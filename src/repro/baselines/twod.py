"""2-D partitioned level-synchronous BFS (the road not taken).

The paper chose 1-D partitioning with direction optimisation; its related
work weighs that against 2-D decompositions (Buluc & Madduri [6], Checconi
[27], Yoo [26]). This comparator implements the classic 2-D algorithm on
the same simulated machine so the trade-off is measurable:

- processors form an R x C grid; the adjacency matrix is blocked with
  block-row i / block-column j at processor (i, j);
- the frontier/parent vectors are distributed conformally: processor
  (i, j) owns vector segment ``V[i,j]`` — sub-range j of row block i;
- each level: **expand** (allgather frontier bitmaps up the processor
  columns), **local multiply** (CSR expansion of the gathered frontier
  against the local block), **fold** (alltoall of candidate (v, parent)
  records along the processor row to v's vector owner), apply.

Communication therefore touches only R-1 column mates + C-1 row mates —
the 2-D analogue of the relay technique's N+M connection bound — but every
level moves whole frontier bitmaps up the columns, which is exactly the
cost the paper's hub-bitmap "does not scale well" remark is about.

Requires ``n % (R*C) == 0`` (powers of two throughout in Graph500 use).
"""

from __future__ import annotations

import numpy as np

from repro.core.bfs import BFSResult, LevelTrace
from repro.core.config import BFSConfig
from repro.core.pipeline import NodePipeline
from repro.errors import ConfigError, ReproError
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.machine.node import SunwayNode
from repro.machine.specs import MachineSpec, TAIHULIGHT
from repro.network.simmpi import Message, SimCluster
from repro.sim.engine import Engine


class TwoDBFS:
    """Level-synchronous BFS on an R x C processor grid."""

    def __init__(
        self,
        edges: EdgeList,
        grid_rows: int,
        grid_cols: int,
        config: BFSConfig | None = None,
        spec: MachineSpec = TAIHULIGHT,
        nodes_per_super_node: int | None = None,
    ):
        self.config = config or BFSConfig()
        self.spec = spec
        if grid_rows < 1 or grid_cols < 1:
            raise ConfigError(f"bad grid {grid_rows}x{grid_cols}")
        self.R, self.C = grid_rows, grid_cols
        self.P = grid_rows * grid_cols
        self.edges = edges
        self.graph = CSRGraph.from_edges(edges)
        n = self.graph.num_vertices
        if n % self.P != 0:
            raise ConfigError(
                f"2-D layout needs {self.P} | {n} (powers of two throughout)"
            )
        self.n = n
        self.row_block = n // self.R       # vertices per block row
        self.seg = n // self.P             # vertices per vector segment

        self.engine = Engine()
        nps = (
            nodes_per_super_node
            if nodes_per_super_node is not None
            else spec.taihulight.nodes_per_super_node
        )
        self.cluster = SimCluster(self.engine, self.P, spec=spec,
                                  nodes_per_super_node=nps)
        self.pipelines = [
            NodePipeline(SunwayNode(p, spec), self.config) for p in range(self.P)
        ]
        # Per-processor local CSR: rows = sources in column block j (the
        # union of V[i', j] over i'), columns = global targets restricted to
        # row block i.
        self._build_blocks()
        for p in range(self.P):
            self.cluster.register(p, self._make_handler(p))

        # Vector state per processor: parent + next for its segment.
        self.parent = [np.full(self.seg, -1, dtype=np.int64) for _ in range(self.P)]
        self.next_mask = [np.zeros(self.seg, dtype=bool) for _ in range(self.P)]
        self.frontier = [np.empty(0, dtype=np.int64) for _ in range(self.P)]
        self._gathered: list[list[np.ndarray]] = [[] for _ in range(self.P)]
        self._t_max = 0.0
        self._records = 0

    # ------------------------------------------------------------ geometry --
    def rank(self, i: int, j: int) -> int:
        return i * self.C + j

    def coords(self, p: int) -> tuple[int, int]:
        return divmod(p, self.C)

    def segment_range(self, i: int, j: int) -> tuple[int, int]:
        lo = i * self.row_block + j * self.seg
        return lo, lo + self.seg

    def vector_owner(self, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(grid row, grid col) owning each vertex's vector entry."""
        v = np.asarray(v, dtype=np.int64)
        i = v // self.row_block
        j = (v - i * self.row_block) // self.seg
        return i, j

    def column_sources(self, j: int) -> np.ndarray:
        """Global ids whose frontier lives in processor column j."""
        return np.concatenate(
            [np.arange(*self.segment_range(i, j), dtype=np.int64) for i in range(self.R)]
        )

    def _col_local_rows(self, vertices: np.ndarray, j: int) -> np.ndarray:
        """Positions of column-block-j vertices within ``column_sources(j)``."""
        i = vertices // self.row_block
        return i * self.seg + (vertices - i * self.row_block - j * self.seg)

    def _build_blocks(self) -> None:
        # Slice the global CSR into R x C blocks (small functional scales).
        self.blocks: list[CSRGraph] = []
        self.block_sources: list[np.ndarray] = []
        sources, targets = self.graph.expand(np.arange(self.n, dtype=np.int64))
        _, src_j = self.vector_owner(sources)
        tgt_row = targets // self.row_block
        for i in range(self.R):
            for j in range(self.C):
                keep = (src_j == j) & (tgt_row == i)
                s, t = sources[keep], targets[keep]
                col_sources = self.column_sources(j)
                local_rows = self._col_local_rows(s, j)
                order = np.lexsort((t, local_rows))
                local_rows, t = local_rows[order], t[order]
                counts = np.bincount(local_rows, minlength=len(col_sources))
                row_ptr = np.zeros(len(col_sources) + 1, dtype=np.int64)
                np.cumsum(counts, out=row_ptr[1:])
                self.blocks.append(CSRGraph(row_ptr, t, len(col_sources)))
                self.block_sources.append(col_sources)

    # ------------------------------------------------------------ messaging --
    def _mark(self, t: float) -> None:
        if t > self._t_max:
            self._t_max = t

    def _allreduce_time(self) -> float:
        if self.P == 1:
            return 0.0
        t = self.spec.taihulight
        rounds = int(np.ceil(np.log2(self.P)))
        return rounds * (t.inter_super_node_latency + t.message_overhead)

    def _make_handler(self, p: int):
        def handler(msg: Message) -> None:
            self._on_message(p, msg)

        return handler

    def _on_message(self, p: int, msg: Message) -> None:
        ready = self.pipelines[p].submit_recv(msg.arrival_time)
        self._mark(ready)
        if msg.tag == "frontier":
            execution = self.pipelines[p].submit_module(
                ready, "forward_handler", msg.nbytes
            )
            self._mark(execution.finish)
            self._gathered[p].append(msg.payload)
        elif msg.tag == "fold":
            execution = self.pipelines[p].submit_module(
                ready, "forward_handler", msg.nbytes
            )
            self._mark(execution.finish)
            u, v = msg.payload
            self._apply(p, u, v)
        else:  # pragma: no cover - defensive
            raise ReproError(f"unknown tag {msg.tag!r}")

    def _apply(self, p: int, u: np.ndarray, v: np.ndarray) -> None:
        i, j = self.coords(p)
        lo, _ = self.segment_range(i, j)
        v_local = v - lo
        fresh = self.parent[p][v_local] < 0
        v_local, u = v_local[fresh], u[fresh]
        if len(v_local) == 0:
            return
        uniq, first = np.unique(v_local, return_index=True)
        self.parent[p][uniq] = u[first]
        self.next_mask[p][uniq] = True

    # ----------------------------------------------------------------- run --
    def run(self, root: int) -> BFSResult:
        if not 0 <= root < self.n:
            raise ConfigError(f"root {root} out of range")
        for p in range(self.P):
            self.parent[p][:] = -1
            self.next_mask[p][:] = False
            self.frontier[p] = np.empty(0, dtype=np.int64)
        ri, rj = self.vector_owner(np.array([root]))
        owner = self.rank(int(ri[0]), int(rj[0]))
        lo, _ = self.segment_range(int(ri[0]), int(rj[0]))
        self.parent[owner][root - lo] = root
        self.frontier[owner] = np.array([root], dtype=np.int64)

        t_start = max(self.engine.now, self._t_max)
        self._t_max = t_start
        self._records = 0
        traces: list[LevelTrace] = []
        bitmap_bytes = -(-self.seg // 8)

        control = self._allreduce_time()
        level = 0
        while level < self.config.max_levels:
            level += 1
            # Level barrier: the "is the global frontier empty?" allreduce.
            t0 = self._t_max + control
            self._mark(t0)
            frontier_total = sum(len(f) for f in self.frontier)
            msgs_before = self.cluster.stats.value("messages")
            records_before = self._records

            # --- expand: allgather frontier segments up each column -------
            for p in range(self.P):
                i, j = self.coords(p)
                execution = self.pipelines[p].submit_module(
                    t0, "forward_generator", max(1, bitmap_bytes)
                )
                self._mark(execution.finish)
                self._gathered[p].append(self.frontier[p])
                for i2 in range(self.R):
                    if i2 == i:
                        continue
                    peer = self.rank(i2, j)
                    send_at = self.pipelines[p].submit_send(
                        execution.finish, bitmap_bytes
                    )
                    self._mark(send_at)
                    self.cluster.send(
                        p, peer, "frontier",
                        self.config.header_bytes + bitmap_bytes,
                        payload=self.frontier[p], at_time=send_at,
                    )
            self.engine.run_until_quiescent()

            # --- local multiply + fold along rows --------------------------
            t1 = self._t_max
            for p in range(self.P):
                i, j = self.coords(p)
                gathered = self._gathered[p]
                self._gathered[p] = []
                f_j = (
                    np.concatenate(gathered)
                    if gathered
                    else np.empty(0, dtype=np.int64)
                )
                if len(f_j) == 0:
                    continue
                block = self.blocks[p]
                col_sources = self.block_sources[p]
                # Map gathered global frontier ids to block-local rows.
                local_rows = self._col_local_rows(f_j, j)
                srcs_local, targets = block.expand(local_rows)
                sources = col_sources[srcs_local]
                nbytes = max(1, len(targets)) * self.config.record_bytes
                execution = self.pipelines[p].submit_module(
                    t1, "forward_generator", nbytes
                )
                self._mark(execution.finish)
                if len(targets) == 0:
                    continue
                oi, oj = self.vector_owner(targets)
                dest = oi * self.C + oj
                order = np.argsort(dest, kind="stable")
                dest, sources, targets = dest[order], sources[order], targets[order]
                cuts = np.flatnonzero(np.diff(dest)) + 1
                starts = np.concatenate(([0], cuts))
                stops = np.concatenate((cuts, [len(dest)]))
                for k, (a, b) in enumerate(zip(starts, stops)):
                    d = int(dest[a])
                    self._records += b - a
                    payload = (sources[a:b], targets[a:b])
                    mb = self.config.header_bytes + (b - a) * self.config.record_bytes
                    if d == p:
                        local_exec = self.pipelines[p].submit_module(
                            execution.finish, "forward_handler", mb
                        )
                        self._mark(local_exec.finish)
                        self._apply(p, *payload)
                        continue
                    ready = execution.ready_fraction((k + 1) / len(starts))
                    send_at = self.pipelines[p].submit_send(ready, mb)
                    self._mark(send_at)
                    self.cluster.send(p, d, "fold", mb, payload=payload,
                                      at_time=send_at)
            self.engine.run_until_quiescent()

            traces.append(
                LevelTrace(
                    level=level,
                    direction="topdown",
                    frontier_vertices=frontier_total,
                    frontier_edges=0,
                    records_sent=self._records - records_before,
                    messages=int(self.cluster.stats.value("messages") - msgs_before),
                    hub_settled=0,
                    subrounds=1,
                    start=t0,
                    finish=self._t_max,
                )
            )

            # --- barrier: promote next -> frontier ------------------------
            new_total = 0
            for p in range(self.P):
                i, j = self.coords(p)
                lo, _ = self.segment_range(i, j)
                idx = np.flatnonzero(self.next_mask[p])
                self.frontier[p] = idx + lo
                self.next_mask[p][:] = False
                new_total += len(idx)
            if new_total == 0:
                break
        else:
            raise ReproError(f"2-D BFS exceeded {self.config.max_levels} levels")

        parent = np.full(self.n, -1, dtype=np.int64)
        for p in range(self.P):
            i, j = self.coords(p)
            lo, hi = self.segment_range(i, j)
            parent[lo:hi] = self.parent[p]
        return BFSResult(
            root=root,
            parent=parent,
            levels=len(traces),
            sim_seconds=max(self._t_max - t_start, 1e-12),
            traces=traces,
            stats={
                "records_sent": float(self._records),
                "messages": self.cluster.stats.value("messages"),
                "bytes": self.cluster.stats.value("bytes"),
                "hub_settled": 0.0,
                "td_levels": float(len(traces)),
                "bu_levels": 0.0,
            },
        )
