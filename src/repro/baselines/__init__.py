"""The four implementations Figure 11 compares.

Every variant is the same :class:`~repro.core.bfs.DistributedBFS` with two
switches flipped:

- **relay-cpe** — the paper's final system: contention-free CPE shuffling
  plus group-based relay batching;
- **relay-mpe** — relay routing, but modules processed on the MPEs;
- **direct-cpe** — CPE shuffling, but every message straight to its
  destination (dies of SPM overflow once per-destination staging no longer
  fits 64 KB);
- **direct-mpe** — the naive port: MPE processing and direct messaging
  (dies of MPI connection memory at large node counts).

``plain-topdown`` additionally disables direction optimisation and hub
prefetch — the textbook 1-D BFS used by ablations.
"""

from repro.baselines.variants import VARIANTS, make_variant, variant_config
from repro.baselines.twod import TwoDBFS

__all__ = ["VARIANTS", "make_variant", "variant_config", "TwoDBFS"]
