"""Minimal ASCII table renderer for benchmark and report output.

The benchmark harness reproduces the paper's tables and figure series as
text; this renderer keeps that output aligned and diff-friendly without any
third-party dependency.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


class Table:
    """An append-only table with column alignment.

    >>> t = Table(["nodes", "GTEPS"])
    >>> t.add_row([64, 35.1])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    nodes | GTEPS
    ----- | -----
    64    | 35.1
    """

    def __init__(self, headers: Sequence[str], title: str | None = None):
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, row: Iterable[object]) -> None:
        cells = [self._fmt(c) for c in row]
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(cells)

    @staticmethod
    def _fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append(" | ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
