"""Units and human-readable formatting.

Conventions used throughout the simulator:

- **time** is measured in *seconds* of simulated time (floats);
- **sizes** are measured in *bytes* (ints where possible);
- **bandwidths** are *bytes per second*.

The paper mixes decimal (GB/s bandwidths, Gbps links) and binary (KB SPM)
units; we expose both, with ``KB``/``MB``/``GB`` decimal per the networking
convention and ``KiB``/``MiB``/``GiB`` binary.
"""

from __future__ import annotations

# --- sizes -----------------------------------------------------------------
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
KiB = 1 << 10
MiB = 1 << 20
GiB = 1 << 30

# --- time ------------------------------------------------------------------
NS = 1e-9
US = 1e-6
MS = 1e-3
SEC = 1.0

# --- rates -----------------------------------------------------------------
GBPS = 1e9  # bytes/second per "GB/s"


def fmt_bytes(n: float) -> str:
    """Render a byte count with a binary suffix (``640 B``, ``2.0 KiB``)."""
    n = float(n)
    for unit, width in (("GiB", GiB), ("MiB", MiB), ("KiB", KiB)):
        if abs(n) >= width:
            return f"{n / width:.1f} {unit}"
    return f"{n:.0f} B"


def fmt_time(seconds: float) -> str:
    """Render a duration with an adaptive unit (``12.3 us``, ``4.56 s``)."""
    s = float(seconds)
    if abs(s) >= 1.0:
        return f"{s:.3g} s"
    if abs(s) >= MS:
        return f"{s / MS:.3g} ms"
    if abs(s) >= US:
        return f"{s / US:.3g} us"
    return f"{s / NS:.3g} ns"


def fmt_rate(bytes_per_sec: float) -> str:
    """Render a bandwidth in decimal units (``28.9 GB/s``)."""
    r = float(bytes_per_sec)
    if abs(r) >= GB:
        return f"{r / GB:.3g} GB/s"
    if abs(r) >= MB:
        return f"{r / MB:.3g} MB/s"
    if abs(r) >= KB:
        return f"{r / KB:.3g} KB/s"
    return f"{r:.3g} B/s"


def fmt_count(n: float) -> str:
    """Render a large count with K/M/G suffixes (``26.2M``)."""
    n = float(n)
    for unit, width in (("G", 1e9), ("M", 1e6), ("K", 1e3)):
        if abs(n) >= width:
            return f"{n / width:.3g}{unit}"
    return f"{n:.3g}"


def gteps(edges: float, seconds: float) -> float:
    """Giga-traversed-edges-per-second, the Graph500 headline metric."""
    if seconds <= 0:
        raise ValueError(f"non-positive duration: {seconds!r}")
    return edges / seconds / 1e9
