"""Deprecated: execution-trace export moved to :mod:`repro.telemetry.export`.

This module re-exports the original three functions so existing imports
keep working; new code should use ``repro.telemetry`` (which also records
spans, labeled metrics and critical-path attribution around the same
busy-interval data).
"""

from __future__ import annotations

import warnings

from repro.telemetry.export import (  # noqa: F401  (re-exports)
    collect_intervals,
    enable_tracing,
    to_chrome_trace,
)

__all__ = ["enable_tracing", "collect_intervals", "to_chrome_trace"]

warnings.warn(
    "repro.utils.trace is deprecated; use repro.telemetry.export instead",
    DeprecationWarning,
    stacklevel=2,
)
