"""Execution-trace export (Chrome ``chrome://tracing`` JSON).

When tracing is enabled on a BFS instance, every server (MPE, CPE cluster,
link) records its busy intervals; this module converts them into the Trace
Event Format so a traversal's pipeline behaviour — module overlap, M0/M1
send/recv streams, cluster serialisation — can be inspected visually.
"""

from __future__ import annotations

import json
from collections.abc import Iterable

from repro.sim.resources import Server


def enable_tracing(servers: Iterable[Server]) -> None:
    """Attach interval logs to servers (idempotent)."""
    for s in servers:
        if getattr(s, "intervals", None) is None:
            s.intervals = []  # type: ignore[attr-defined]


def collect_intervals(servers: Iterable[Server]) -> dict[str, list[tuple[float, float]]]:
    out = {}
    for s in servers:
        intervals = getattr(s, "intervals", None)
        if intervals:
            out[s.name] = list(intervals)
    return out


def to_chrome_trace(
    intervals_by_server: dict[str, list[tuple[float, float]]],
    time_scale: float = 1e6,
) -> str:
    """Render busy intervals as Trace Event Format JSON (times in us)."""
    events = []
    # Group servers by node so the viewer shows one process per node.
    for name in sorted(intervals_by_server):
        if "." in name:
            pid, tid = name.split(".", 1)
        else:
            pid, tid = "machine", name
        for start, finish in intervals_by_server[name]:
            events.append(
                {
                    "name": tid,
                    "cat": "sim",
                    "ph": "X",
                    "ts": start * time_scale,
                    "dur": max(finish - start, 0.0) * time_scale,
                    "pid": pid,
                    "tid": tid,
                }
            )
    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"}, indent=None)
