"""Shared utilities: units, table formatting, and logging helpers."""

from repro.utils.units import (
    KB,
    MB,
    GB,
    KiB,
    MiB,
    GiB,
    NS,
    US,
    MS,
    SEC,
    GBPS,
    fmt_bytes,
    fmt_time,
    fmt_rate,
    fmt_count,
)
from repro.utils.tables import Table

__all__ = [
    "KB",
    "MB",
    "GB",
    "KiB",
    "MiB",
    "GiB",
    "NS",
    "US",
    "MS",
    "SEC",
    "GBPS",
    "fmt_bytes",
    "fmt_time",
    "fmt_rate",
    "fmt_count",
    "Table",
]
