"""Logging setup for the repro package.

All modules log through the ``repro`` logger hierarchy; simulations are
silent by default (benchmarks print their own tables). ``enable_logging``
turns on human-oriented progress output for interactive use.
"""

from __future__ import annotations

import logging

ROOT_LOGGER = "repro"


def get_logger(name: str) -> logging.Logger:
    """Return a child of the package logger (``repro.<name>``)."""
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def enable_logging(level: int = logging.INFO) -> None:
    """Attach a stderr handler to the package logger (idempotent)."""
    logger = logging.getLogger(ROOT_LOGGER)
    logger.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        logger.addHandler(handler)
