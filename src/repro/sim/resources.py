"""Busy-time resources for callback-style simulation.

The BFS runtime computes every service time up front (from the machine
model), so a resource does not need blocking semantics — only an answer to
"given work arriving at time ``t`` that takes ``d`` seconds, when does it
start and finish?". :class:`Server` is one FIFO execution unit (an MPE, a
CPE cluster, a network link); :class:`ServerPool` models "any idle unit"
scheduling (the paper's first-come-first-serve CPE-cluster dispatch).
"""

from __future__ import annotations

from repro.errors import SimulationError


class Server:
    """One FIFO unit of service with a next-free time and utilisation stats.

    Setting ``intervals`` to a list (see :mod:`repro.telemetry.export`) makes the
    server record every (start, finish) busy window for trace export.
    """

    __slots__ = ("name", "free_at", "busy_time", "jobs", "intervals")

    def __init__(self, name: str = "server") -> None:
        self.name = name
        self.free_at = 0.0
        self.busy_time = 0.0
        self.jobs = 0
        self.intervals: list[tuple[float, float]] | None = None

    def admit(self, now: float, duration: float) -> tuple[float, float]:
        """Enqueue a job arriving at ``now`` lasting ``duration``.

        Returns ``(start, finish)`` and advances the server's clock.
        """
        if duration < 0:
            raise SimulationError(f"negative service time: {duration!r}")
        start = max(now, self.free_at)
        finish = start + duration
        self.free_at = finish
        self.busy_time += duration
        self.jobs += 1
        if self.intervals is not None:
            self.intervals.append((start, finish))
        return start, finish

    def admit_many(self, times: list[float], duration: float) -> list[float]:
        """FIFO-admit one fixed-``duration`` job per arrival time; returns
        the finish times.

        Exactly :meth:`admit` called once per element in order — the
        ``max`` recurrence over ``free_at`` is order-dependent in floating
        point, so it stays a sequential scan — with the per-call attribute
        and bookkeeping overhead paid once per batch.
        """
        if duration < 0:
            raise SimulationError(f"negative service time: {duration!r}")
        finishes = []
        append = finishes.append
        free = self.free_at
        busy = self.busy_time
        intervals = self.intervals
        for now in times:
            start = now if now > free else free
            free = start + duration
            busy += duration
            append(free)
            if intervals is not None:
                intervals.append((start, free))
        self.free_at = free
        self.busy_time = busy
        self.jobs += len(times)
        return finishes

    def earliest_start(self, now: float) -> float:
        """When a job arriving at ``now`` would begin service."""
        return max(now, self.free_at)

    def utilisation(self, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` spent busy."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / horizon)

    def reset(self) -> None:
        self.free_at = 0.0
        self.busy_time = 0.0
        self.jobs = 0

    # -- telemetry ---------------------------------------------------------------
    def enable_intervals(self) -> None:
        """Start recording (start, finish) busy windows (idempotent)."""
        if self.intervals is None:
            self.intervals = []

    def clear_intervals(self) -> None:
        """Drop recorded windows but keep recording enabled (if it was)."""
        if self.intervals is not None:
            self.intervals = []


class ServerPool:
    """A set of interchangeable servers with earliest-available dispatch.

    This models the paper's module scheduling: an incoming module execution
    is given to whichever CPE cluster frees up first (first-come-first-serve,
    Section 4.4), and the caller can inspect the queueing delay to decide to
    divert tiny jobs to the MPE instead (the 1 KB quick path, Section 5).
    """

    def __init__(self, names: list[str]) -> None:
        if not names:
            raise SimulationError("empty server pool")
        self.servers = [Server(n) for n in names]

    def __len__(self) -> int:
        return len(self.servers)

    def pick(self, now: float) -> Server:
        """The server that could start a job arriving at ``now`` soonest.

        Ties break on position, which keeps dispatch deterministic.
        """
        return min(self.servers, key=lambda s: (s.earliest_start(now),))

    def earliest_start(self, now: float) -> float:
        return self.pick(now).earliest_start(now)

    def admit(self, now: float, duration: float) -> tuple[float, float, Server]:
        server = self.pick(now)
        start, finish = server.admit(now, duration)
        return start, finish, server

    def reset(self) -> None:
        for s in self.servers:
            s.reset()

    def total_busy_time(self) -> float:
        return sum(s.busy_time for s in self.servers)
