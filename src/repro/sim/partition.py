"""Partitioned conservative-sync event engine (PDES) over node groups.

The sequential :class:`~repro.sim.engine.Engine` is one heap; at scale the
kernel phase is dominated by pushing and popping that single queue. This
module splits the event population into per-partition *lanes* — one compute
lane per simulated node group, one *fabric* lane for link admissions, one
*control* lane for timers and unregistered callbacks — and advances each
lane in conservative drain runs bounded by the other lanes' earliest work.

Why this is safe (the lookahead argument)
-----------------------------------------
A cross-partition message must traverse modeled fat-tree links, and every
link only delays it: the arrival time of a message from partition *p* to
partition *q* is at least ``send_time + min_cross_latency(p, q)`` — the
minimum propagation latency between the two node ranges, derived from
:class:`~repro.network.topology.FatTreeTopology` geometry and the
:class:`~repro.network.cost.NetworkModel` constants (1 us intra super node,
3 us across the central switches). That bound is the classic conservative
PDES *lookahead*: while a partition's clock plus the lookahead is below
every neighbour's horizon, no earlier cross-partition event can appear.
:class:`PartitionLayout` aligns partitions to super-node boundaries
whenever there are at least as many super nodes as partitions, which makes
*every* cross-partition message pay the 3 us central-switch latency — the
widest derivable window. Each ordered partition pair owns a
:class:`PartitionChannel` that timestamps every cross-partition delivery
and *verifies* the promised slack at runtime, so a link-model change that
silently shrank the window fails loudly instead of corrupting results.

Why results are bit-identical (the ordering argument)
-----------------------------------------------------
Event handles double as heap tie-breakers and are allocated in schedule
order, so the global ``(when, seq)`` execution order is observable —
simultaneous events (message bursts at a level barrier) are real, and
reordering them would reorder handle allocation downstream. The drain loop
therefore never reorders: it always executes the global minimum. A drain
run stays on one lane only while that lane's head is strictly below the
*drain bound* — the minimum head of every other lane, shrunk in place
whenever an executed callback pushes work across lanes — which is exactly
the condition under which the lane head *is* the global minimum. The
sequential engine remains the executable specification;
``tests/test_message_path_parity.py`` pins parents, ``sim_seconds``, stats
snapshots and telemetry spans bit-identical across partition counts.

The fabric lane exists because link admission mutates shared FIFO
``free_at`` state with zero lookahead — admissions must serialise in global
order, so they get their own lane instead of a compute lane. Self-sends
touch no links and stay on their node's compute lane.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Sequence
from typing import Any

from repro.errors import ConfigError, SimulationError
from repro.sim.engine import Engine

_INF = float("inf")

#: Route kinds for registered scheduling entry points.
_DELIVERY = 0
_INJECTION = 1


class PartitionLayout:
    """Contiguous node groups, super-node aligned whenever possible."""

    __slots__ = ("num_nodes", "partitions", "bounds", "aligned", "part_of")

    def __init__(
        self, num_nodes: int, bounds: Sequence[int], aligned: bool
    ) -> None:
        if len(bounds) < 2 or bounds[0] != 0 or bounds[-1] != num_nodes:
            raise ConfigError(f"bad partition bounds {list(bounds)!r}")
        for lo, hi in zip(bounds, bounds[1:]):
            if hi <= lo:
                raise ConfigError(f"empty partition in bounds {list(bounds)!r}")
        self.num_nodes = num_nodes
        self.partitions = len(bounds) - 1
        self.bounds = tuple(bounds)
        self.aligned = aligned
        table = [0] * num_nodes
        for p in range(self.partitions):
            for node in range(bounds[p], bounds[p + 1]):
                table[node] = p
        #: Per-node partition id, indexed ``part_of[node]`` on the hot path.
        self.part_of = table

    @classmethod
    def build(cls, topology: Any, partitions: int) -> "PartitionLayout":
        """Split ``topology``'s nodes into at most ``partitions`` groups.

        When the machine has at least as many super nodes as requested
        partitions, whole super nodes are grouped — then every
        cross-partition message crosses the central switches and the
        inter-super-node latency is the lookahead. Otherwise nodes are
        split evenly and the (smaller) intra-super-node latency applies.
        More partitions than nodes collapses to one node per partition.
        """
        n = int(topology.num_nodes)
        p = max(1, min(int(partitions), n))
        n_sn = int(topology.num_super_nodes)
        nps = int(topology.nodes_per_super_node)
        bounds = [0]
        if n_sn >= p:
            base, extra = divmod(n_sn, p)
            sn = 0
            for i in range(p):
                sn += base + (1 if i < extra else 0)
                bounds.append(min(sn * nps, n))
            aligned = True
        else:
            base, extra = divmod(n, p)
            node = 0
            for i in range(p):
                node += base + (1 if i < extra else 0)
                bounds.append(node)
            aligned = False
        return cls(n, bounds, aligned)

    def span(self, partition: int) -> tuple[int, int]:
        """Node range ``[lo, hi)`` of one partition."""
        return self.bounds[partition], self.bounds[partition + 1]


class LookaheadTable:
    """Derived per-ordered-pair lookahead between partition node ranges."""

    __slots__ = ("partitions", "_latency")

    def __init__(self, layout: PartitionLayout, network: Any) -> None:
        p = layout.partitions
        self.partitions = p
        latency = [0.0] * (p * p)
        for a in range(p):
            for b in range(p):
                if a != b:
                    latency[a * p + b] = float(
                        network.min_cross_latency(layout.span(a), layout.span(b))
                    )
        self._latency = latency

    def lookahead(self, src_partition: int, dst_partition: int) -> float:
        """Seconds no ``src -> dst`` cross event can beat past its send."""
        return self._latency[src_partition * self.partitions + dst_partition]

    def min_lookahead(self) -> float:
        """The tightest window of any ordered pair (reporting)."""
        cross = [
            self._latency[a * self.partitions + b]
            for a in range(self.partitions)
            for b in range(self.partitions)
            if a != b
        ]
        return min(cross) if cross else _INF


class PartitionChannel:
    """Timestamped cross-partition delivery channel for one ordered pair.

    Every delivery scheduled from partition ``src`` into partition ``dst``
    is recorded here; the channel checks the observed slack (arrival minus
    send time) against the derived lookahead so the safe-window guarantee
    is enforced, not assumed.
    """

    __slots__ = ("src_partition", "dst_partition", "lookahead", "pushes", "min_slack")

    def __init__(
        self, src_partition: int, dst_partition: int, lookahead: float
    ) -> None:
        self.src_partition = src_partition
        self.dst_partition = dst_partition
        self.lookahead = lookahead
        self.pushes = 0
        self.min_slack = _INF

    def record(self, when: float, send_time: float) -> None:
        slack = when - send_time
        # The epsilon tolerates the one float rounding of ``t + latency``;
        # a genuine violation is off by a full latency class, not an ulp.
        if slack < self.lookahead * (1.0 - 1e-9):
            raise SimulationError(
                f"cross-partition delivery {self.src_partition}->"
                f"{self.dst_partition} arrived with slack {slack:.3e}s, "
                f"below the derived lookahead {self.lookahead:.3e}s — the "
                "link model no longer honours the safe-window bound"
            )
        self.pushes += 1
        if slack < self.min_slack:
            self.min_slack = slack


class PartitionedEngine(Engine):
    """Multi-lane event engine executing the exact global event order.

    Drop-in replacement for :class:`~repro.sim.engine.Engine` (same
    scheduling/cancel/run API, same clock semantics, same telemetry
    accounting). Construct with the partition count, then call
    :meth:`attach_cluster` once the simulated cluster exists so the layout
    and lookahead table can be derived from its modeled network.
    """

    def __init__(self, partitions: int) -> None:
        super().__init__()
        if partitions < 1:
            raise ConfigError(f"need at least one partition, got {partitions}")
        self.partitions = int(partitions)
        #: Lane indices: ``0..partitions-1`` compute, then fabric, control.
        self._fabric = self.partitions
        self._control = self.partitions + 1
        self._lanes: list[list[list[Any]]] = [
            [] for _ in range(self.partitions + 2)
        ]
        #: Live (scheduled, not executed, not cancelled) entries by handle.
        self._entries: dict[int, list[Any]] = {}
        #: Registered scheduling entry points: underlying function -> kind.
        self._routes: dict[Any, int] = {}
        self._node_partition: list[int] = []
        self.layout: PartitionLayout | None = None
        self.lookahead: LookaheadTable | None = None
        self._channels: dict[int, PartitionChannel] = {}
        self._current_lane = self._control
        self._drain_bound: tuple[float, int] = (_INF, -1)
        # PDES self-accounting — kept out of the cluster stats registry on
        # purpose: parity tests pin stats snapshots bit-identical to the
        # sequential engine, so this surfaces via partition_report() only.
        self._lane_events = [0] * (self.partitions + 2)
        self._drains = 0
        self._longest_drain = 0

    # -- wiring ------------------------------------------------------------------
    def attach_cluster(self, cluster: Any) -> None:
        """Derive layout/lookahead from the cluster's modeled network and
        register its scheduling entry points as routed functions."""
        layout = PartitionLayout.build(cluster.network.topology, self.partitions)
        self.layout = layout
        self._node_partition = layout.part_of
        self.lookahead = LookaheadTable(layout, cluster.network)
        self._channels = {}
        for a in range(layout.partitions):
            for b in range(layout.partitions):
                if a != b:
                    self._channels[a * self.partitions + b] = PartitionChannel(
                        a, b, self.lookahead.lookahead(a, b)
                    )
        cls = type(cluster)
        self.register_delivery(cls._deliver)
        self.register_injection(cls._inject)
        inject_batched = getattr(cls, "_inject_batched", None)
        if inject_batched is not None:
            self.register_injection(inject_batched)

    def register_delivery(self, fn: Callable[..., None]) -> None:
        """Mark ``fn(msg, ...)`` as a delivery entry point: its events run
        on the compute lane of ``msg.dst``'s partition, and cross-partition
        schedules are validated through the pair channel."""
        self._routes[getattr(fn, "__func__", fn)] = _DELIVERY

    def register_injection(self, fn: Callable[..., None]) -> None:
        """Mark ``fn(msg, ...)`` as a link-admission entry point: remote
        sends serialise on the shared FIFO link state (zero lookahead) and
        ride the fabric lane; self-sends touch no links and stay on the
        node's compute lane."""
        self._routes[getattr(fn, "__func__", fn)] = _INJECTION

    # -- classification ----------------------------------------------------------
    def _lane_of(
        self, when: float, fn: Callable[..., None], args: tuple[Any, ...]
    ) -> int:
        kind = self._routes.get(getattr(fn, "__func__", fn))
        if kind is None or not args:
            return self._control
        msg = args[0]
        table = self._node_partition
        if kind == _DELIVERY:
            dst_partition = table[msg.dst]
            src_partition = table[msg.src]
            if src_partition != dst_partition:
                self._channels[
                    src_partition * self.partitions + dst_partition
                ].record(when, msg.send_time)
            return dst_partition
        if msg.src == msg.dst:
            return table[msg.dst]
        return self._fabric

    # -- bookkeeping --------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    # -- scheduling ---------------------------------------------------------------
    def call_at(self, when: float, fn: Callable[..., None], *args: Any) -> int:
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event at t={when!r} before now={self._now!r}"
            )
        handle = self._seq
        self._seq = handle + 1
        entry: list[Any] = [when, handle, fn, args]
        self._entries[handle] = entry
        lane = self._lane_of(when, fn, args)
        heapq.heappush(self._lanes[lane], entry)
        if self._running and lane != self._current_lane:
            bound_when, bound_seq = self._drain_bound
            if when < bound_when or (when == bound_when and handle < bound_seq):
                self._drain_bound = (when, handle)
        return handle

    def schedule_batch(
        self,
        whens: list[float],
        fn: Callable[..., None],
        argses: list[tuple[Any, ...]],
    ) -> range:
        if len(whens) != len(argses):
            raise SimulationError("schedule_batch lists must have equal lengths")
        if whens and min(whens) < self._now:
            raise SimulationError(
                f"cannot schedule event at t={min(whens)!r} before now={self._now!r}"
            )
        first = self._seq
        seq = first
        entries = self._entries
        lanes = self._lanes
        push = heapq.heappush
        running = self._running
        current = self._current_lane
        for when, args in zip(whens, argses):
            entry: list[Any] = [when, seq, fn, args]
            entries[seq] = entry
            lane = self._lane_of(when, fn, args)
            push(lanes[lane], entry)
            if running and lane != current:
                bound_when, bound_seq = self._drain_bound
                if when < bound_when or (when == bound_when and seq < bound_seq):
                    self._drain_bound = (when, seq)
            seq += 1
        self._seq = seq
        return range(first, seq)

    def cancel(self, handle: int) -> None:
        """Cancel by handle: the entry leaves the live table immediately
        and is voided in place in its lane heap (payload freed, heap node
        skipped at pop), so cancellation is bounded by construction.
        Cancelling an already-executed handle is a tolerated no-op."""
        if not 0 <= handle < self._seq:
            raise SimulationError(f"unknown event handle: {handle!r}")
        entry = self._entries.pop(handle, None)
        if entry is not None:
            entry[2] = None
            entry[3] = ()

    # -- running ------------------------------------------------------------------
    def _min_lane(self) -> int:
        """Lane holding the global-minimum live event, or -1 when drained.

        Voided (cancelled) heads are purged as a side effect so lane heads
        are live afterwards.
        """
        best = -1
        best_when = 0.0
        best_seq = -1
        pop = heapq.heappop
        for idx, heap in enumerate(self._lanes):
            while heap and heap[0][2] is None:
                pop(heap)
            if heap:
                head = heap[0]
                when = head[0]
                if (
                    best < 0
                    or when < best_when
                    or (when == best_when and head[1] < best_seq)
                ):
                    best = idx
                    best_when = when
                    best_seq = head[1]
        return best

    def step(self) -> bool:
        """Execute the next live event. Returns False when drained."""
        lane = self._min_lane()
        if lane < 0:
            return False
        entry = heapq.heappop(self._lanes[lane])
        del self._entries[entry[1]]
        self._now = entry[0]
        self._events_executed += 1
        self._lane_events[lane] += 1
        entry[2](*entry[3])
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Drain the lanes in exact global ``(when, seq)`` order.

        Clock semantics match :meth:`Engine.run` exactly: with ``until``
        set, later events stay queued and the clock lands on ``until``.
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        executed = 0
        try:
            lanes = self._lanes
            entries = self._entries
            pop = heapq.heappop
            while True:
                lane_idx = self._min_lane()
                if lane_idx < 0:
                    if until is not None:
                        self._now = max(self._now, until)
                    break
                lane = lanes[lane_idx]
                if until is not None and lane[0][0] > until:
                    self._now = until
                    break
                if max_events is not None and executed >= max_events:
                    break
                # Conservative drain: stay on this lane while its head is
                # strictly below every other lane's earliest entry. The
                # bound shrinks in place whenever an executed callback
                # pushes work onto another lane (call_at/schedule_batch),
                # so the run extends exactly as far as safety allows.
                bound_when = _INF
                bound_seq = -1
                for idx, other in enumerate(lanes):
                    if idx != lane_idx and other:
                        head = other[0]
                        when = head[0]
                        if when < bound_when or (
                            when == bound_when and head[1] < bound_seq
                        ):
                            bound_when = when
                            bound_seq = head[1]
                self._drain_bound = (bound_when, bound_seq)
                self._current_lane = lane_idx
                self._drains += 1
                run_len = 0
                while lane:
                    head = lane[0]
                    fn = head[2]
                    if fn is None:
                        pop(lane)
                        continue
                    when = head[0]
                    seq = head[1]
                    bound_when, bound_seq = self._drain_bound
                    if when > bound_when or (
                        when == bound_when and seq > bound_seq
                    ):
                        break
                    if until is not None and when > until:
                        break
                    if max_events is not None and executed >= max_events:
                        break
                    pop(lane)
                    del entries[seq]
                    self._now = when
                    executed += 1
                    run_len += 1
                    fn(*head[3])
                self._lane_events[lane_idx] += run_len
                if run_len > self._longest_drain:
                    self._longest_drain = run_len
        finally:
            self._running = False
            self._current_lane = self._control
            # Folded out of the hot loop, exactly like the base engine, so
            # the telemetry counter families stay bit-identical.
            self._events_executed += executed
            if self.telemetry is not None and executed:
                self.telemetry.metrics.counter("engine_events").add(executed)
        return self._now

    def run_until_quiescent(self, max_events: int = 100_000_000) -> float:
        """Drain every event; raise if the bound is hit (runaway simulation)."""
        start = self._events_executed
        self.run(max_events=max_events)
        if self._entries:
            raise SimulationError(
                f"simulation still active after {self._events_executed - start} events"
            )
        return self._now

    # -- reporting ----------------------------------------------------------------
    def partition_report(self) -> dict[str, Any]:
        """PDES self-accounting: layout, lane loads, drain runs, channels.

        Deliberately *not* part of the cluster stats registry — parity
        tests pin stats snapshots bit-identical across partition counts,
        and this accounting only exists on the partitioned engine.
        """
        layout = self.layout
        channels = []
        for key in sorted(self._channels):
            channel = self._channels[key]
            channels.append(
                {
                    "src": channel.src_partition,
                    "dst": channel.dst_partition,
                    "lookahead": channel.lookahead,
                    "pushes": channel.pushes,
                    "min_slack": channel.min_slack if channel.pushes else None,
                }
            )
        return {
            "partitions": self.partitions,
            "bounds": None if layout is None else list(layout.bounds),
            "aligned": None if layout is None else layout.aligned,
            "lane_events": {
                "compute": list(self._lane_events[: self.partitions]),
                "fabric": self._lane_events[self._fabric],
                "control": self._lane_events[self._control],
            },
            "drains": self._drains,
            "longest_drain": self._longest_drain,
            "channels": channels,
        }
