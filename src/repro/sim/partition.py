"""Partitioned conservative-sync event engine (PDES) over node groups.

The sequential :class:`~repro.sim.engine.Engine` is one heap; at scale the
kernel phase is dominated by pushing and popping that single queue. This
module splits the event population into per-partition *lanes* — one compute
lane per simulated node group, one *fabric* lane for link admissions, one
*control* lane for timers and unregistered callbacks — and advances each
lane in conservative drain runs bounded by the other lanes' earliest work.

Why this is safe (the lookahead argument)
-----------------------------------------
A cross-partition message must traverse modeled fat-tree links, and every
link only delays it: the arrival time of a message from partition *p* to
partition *q* is at least ``send_time + min_cross_latency(p, q)`` — the
minimum propagation latency between the two node ranges, derived from
:class:`~repro.network.topology.FatTreeTopology` geometry and the
:class:`~repro.network.cost.NetworkModel` constants (1 us intra super node,
3 us across the central switches). That bound is the classic conservative
PDES *lookahead*: while a partition's clock plus the lookahead is below
every neighbour's horizon, no earlier cross-partition event can appear.
:class:`PartitionLayout` aligns partitions to super-node boundaries
whenever there are at least as many super nodes as partitions, which makes
*every* cross-partition message pay the 3 us central-switch latency — the
widest derivable window. Each ordered partition pair owns a
:class:`PartitionChannel` that timestamps every cross-partition delivery
and *verifies* the promised slack at runtime, so a link-model change that
silently shrank the window fails loudly instead of corrupting results.

Why results are bit-identical (the ordering argument)
-----------------------------------------------------
Event handles double as heap tie-breakers and are allocated in schedule
order, so the global ``(when, seq)`` execution order is observable —
simultaneous events (message bursts at a level barrier) are real, and
reordering them would reorder handle allocation downstream. The drain loop
therefore never reorders observable effects: the sequential engine remains
the executable specification, and ``tests/test_message_path_parity.py``
pins parents, ``sim_seconds``, stats snapshots and telemetry spans
bit-identical across partition *and* drain-worker counts.

With ``drain_workers == 1`` the coordinator executes the global minimum
itself: a drain run stays on one lane only while that lane's head is
strictly below the *drain bound* — the minimum head of every other lane,
shrunk in place whenever an executed callback pushes work across lanes —
which is exactly the condition under which the lane head *is* the global
minimum.

Parallel drain windows (``drain_workers > 1``)
----------------------------------------------
Between synchronisation points the coordinator *claims* a window of safe
events per compute lane and dispatches each lane's claim to a worker;
fabric and control lanes always stay on the coordinator. Let ``T0`` be the
earliest compute-lane head and ``L`` the minimum pairwise lookahead. A
compute event is claimable iff its ``(when, seq)`` key is strictly below
the fabric head, the control head and the ``until`` cap, *and* its time is
at most ``T0 + L``. Any event *born during the window* in another lane
(necessarily a cross-partition delivery) arrives at or after ``T0 + L``
with a merge-assigned (larger) seq, so no claimed event can be preceded by
unseen work — the same lookahead bound PR 7 proved for serial drains, now
applied symmetrically to every lane at once.

Workers never touch shared state. Every effect of an executed event —
schedules, cancels, metric mutations, telemetry span rows, connection
ensures, folded scalars — is buffered into a per-event journal batch
(:class:`_Rec`). Own-lane births below the window horizon (self-send
injections and their deliveries) execute locally in key order and journal
their own batches. At the sync point the coordinator replays all batches
through one heap in global ``(when, seq)`` order, allocating real event
seqs exactly where the sequential engine would have: schedule ops pop out
in replay order, so handle allocation, float accumulation order, span ids
and channel validation are all byte-equal to the sequential engine.
Newborn *fabric* events whose time lands inside the window are executed
live at their replay position (link admission only mutates link state,
which no compute event reads, and schedules deliveries at or beyond
``T0 + L``); newborn control events inside the window are unprovable and
raise. The ``drain_backend="process"`` flag forks one child per window
lane — compute escapes the GIL, the CSR is read through the shared-memory
segment (:mod:`repro.graph.shm`), and journals come back symbolically
encoded over a pipe — at a per-window fork/ship cost.

The fabric lane exists because link admission mutates shared FIFO
``free_at`` state with zero lookahead — admissions must serialise in global
order, so they get their own lane instead of a compute lane. Self-sends
touch no links and stay on their node's compute lane.
"""

from __future__ import annotations

import heapq
import os
import pickle
import threading
from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro.errors import ConfigError, SimulationError
from repro.sim.engine import Engine
from repro.telemetry import metrics as _metrics_mod
from repro.telemetry import spans as _spans_mod

_INF = float("inf")

#: Route kinds for registered scheduling entry points.
_DELIVERY = 0
_INJECTION = 1

#: Heap tie for locally-born (merge-seq-pending) events: sorts after every
#: real (pre-window) seq at the same timestamp, exactly as the sequential
#: engine would order a just-allocated handle after all existing ones.
_SEQ_BIG = _INF

#: Below this many remaining ``max_events``, parallel windows are skipped:
#: exact stop-at-budget semantics require the serial per-event accounting.
#: ``run_until_quiescent`` passes 100M, so the real kernel path is always
#: eligible; tiny explicit budgets (tests, debugging) stay serial.
_MIN_PARALLEL_BUDGET = 1_000_000

_TLS = threading.local()


class PartitionLayout:
    """Contiguous node groups, super-node aligned whenever possible."""

    __slots__ = ("num_nodes", "partitions", "bounds", "aligned", "part_of")

    def __init__(
        self, num_nodes: int, bounds: Sequence[int], aligned: bool
    ) -> None:
        if len(bounds) < 2 or bounds[0] != 0 or bounds[-1] != num_nodes:
            raise ConfigError(f"bad partition bounds {list(bounds)!r}")
        for lo, hi in zip(bounds, bounds[1:]):
            if hi <= lo:
                raise ConfigError(f"empty partition in bounds {list(bounds)!r}")
        self.num_nodes = num_nodes
        self.partitions = len(bounds) - 1
        self.bounds = tuple(bounds)
        self.aligned = aligned
        table = [0] * num_nodes
        for p in range(self.partitions):
            for node in range(bounds[p], bounds[p + 1]):
                table[node] = p
        #: Per-node partition id, indexed ``part_of[node]`` on the hot path.
        self.part_of = table

    @classmethod
    def build(cls, topology: Any, partitions: int) -> "PartitionLayout":
        """Split ``topology``'s nodes into at most ``partitions`` groups.

        When the machine has at least as many super nodes as requested
        partitions, whole super nodes are grouped — then every
        cross-partition message crosses the central switches and the
        inter-super-node latency is the lookahead. Otherwise nodes are
        split evenly and the (smaller) intra-super-node latency applies.
        More partitions than nodes collapses to one node per partition.
        """
        n = int(topology.num_nodes)
        p = max(1, min(int(partitions), n))
        n_sn = int(topology.num_super_nodes)
        nps = int(topology.nodes_per_super_node)
        bounds = [0]
        if n_sn >= p:
            base, extra = divmod(n_sn, p)
            sn = 0
            for i in range(p):
                sn += base + (1 if i < extra else 0)
                bounds.append(min(sn * nps, n))
            aligned = True
        else:
            base, extra = divmod(n, p)
            node = 0
            for i in range(p):
                node += base + (1 if i < extra else 0)
                bounds.append(node)
            aligned = False
        return cls(n, bounds, aligned)

    def span(self, partition: int) -> tuple[int, int]:
        """Node range ``[lo, hi)`` of one partition."""
        return self.bounds[partition], self.bounds[partition + 1]


class LookaheadTable:
    """Derived per-ordered-pair lookahead between partition node ranges."""

    __slots__ = ("partitions", "_latency")

    def __init__(self, layout: PartitionLayout, network: Any) -> None:
        p = layout.partitions
        self.partitions = p
        latency = [0.0] * (p * p)
        for a in range(p):
            for b in range(p):
                if a != b:
                    latency[a * p + b] = float(
                        network.min_cross_latency(layout.span(a), layout.span(b))
                    )
        self._latency = latency

    def lookahead(self, src_partition: int, dst_partition: int) -> float:
        """Seconds no ``src -> dst`` cross event can beat past its send."""
        return self._latency[src_partition * self.partitions + dst_partition]

    def min_lookahead(self) -> float:
        """The tightest window of any ordered pair (reporting)."""
        cross = [
            self._latency[a * self.partitions + b]
            for a in range(self.partitions)
            for b in range(self.partitions)
            if a != b
        ]
        return min(cross) if cross else _INF


class PartitionChannel:
    """Timestamped cross-partition delivery channel for one ordered pair.

    Every delivery scheduled from partition ``src`` into partition ``dst``
    is recorded here; the channel checks the observed slack (arrival minus
    send time) against the derived lookahead so the safe-window guarantee
    is enforced, not assumed.
    """

    __slots__ = ("src_partition", "dst_partition", "lookahead", "pushes", "min_slack")

    def __init__(
        self, src_partition: int, dst_partition: int, lookahead: float
    ) -> None:
        self.src_partition = src_partition
        self.dst_partition = dst_partition
        self.lookahead = lookahead
        self.pushes = 0
        self.min_slack = _INF

    def record(self, when: float, send_time: float) -> None:
        slack = when - send_time
        # The epsilon tolerates the one float rounding of ``t + latency``;
        # a genuine violation is off by a full latency class, not an ulp.
        if slack < self.lookahead * (1.0 - 1e-9):
            raise SimulationError(
                f"cross-partition delivery {self.src_partition}->"
                f"{self.dst_partition} arrived with slack {slack:.3e}s, "
                f"below the derived lookahead {self.lookahead:.3e}s — the "
                "link model no longer honours the safe-window bound"
            )
        self.pushes += 1
        if slack < self.min_slack:
            self.min_slack = slack


class _Rec:
    """One claimed or window-born event on a drain worker, plus its journal.

    ``seq`` is the real pre-window handle for claimed events and ``None``
    for window-born (local) events until merge replay allocates it. ``ops``
    is the ordered effect journal of the event's callback; it is applied on
    the coordinator at the event's global ``(when, seq)`` position.
    """

    __slots__ = ("when", "seq", "fn", "args", "ops", "executed", "void", "failed")

    def __init__(
        self,
        when: float,
        seq: int | None,
        fn: Callable[..., None] | None,
        args: tuple[Any, ...],
    ) -> None:
        self.when = when
        self.seq = seq
        self.fn = fn
        self.args = args
        self.ops: list[list[Any]] = []
        self.executed = False
        self.void = False
        self.failed: BaseException | None = None


class _DrainCtx:
    """Per-lane execution context *and* effect journal for one window.

    Installed as the thread-local scheduling target of the engine and as
    the drain sink of the metric/span layers while the lane's events run,
    so every side effect of a callback lands here instead of on shared
    state. ``heap`` holds ``[when, tie, birth, rec]`` items: claimed events
    carry their real seq as ``tie`` and locals carry ``inf`` (a pending
    merge-assigned seq sorts after every pre-window seq at equal time).
    """

    __slots__ = (
        "engine", "lane", "cap_key", "la_cap", "heap", "recs", "claimed",
        "now", "current", "prov", "prov_count", "births", "folds",
        "executed", "failed",
    )

    def __init__(
        self,
        engine: "PartitionedEngine",
        lane: int,
        cap_key: tuple[float, float],
        la_cap: float,
    ) -> None:
        self.engine = engine
        self.lane = lane
        self.cap_key = cap_key
        self.la_cap = la_cap
        self.heap: list[list[Any]] = []
        #: Claimed recs in claim (key) order.
        self.recs: list[_Rec] = []
        #: Claimed recs by real handle (worker-owned: cancel voids in place).
        self.claimed: dict[int, _Rec] = {}
        self.now = 0.0
        self.current: _Rec | None = None
        #: Provisional negative handle -> the journaled schedule op.
        self.prov: dict[int, list[Any]] = {}
        self.prov_count = 0
        self.births = 0
        #: ``(id(obj), attr) -> [obj, attr, kind, value]`` commutative folds.
        self.folds: dict[tuple[int, str], list[Any]] = {}
        self.executed = 0
        self.failed: _Rec | None = None

    # -- engine-facing scheduling (thread-contextual) -------------------------
    def call_at(
        self, when: float, fn: Callable[..., None], args: tuple[Any, ...]
    ) -> int:
        if when < self.now:
            raise SimulationError(
                f"cannot schedule event at t={when!r} before now={self.now!r}"
            )
        current = self.current
        assert current is not None
        rec: _Rec | None = None
        if self.engine._lane_pure(fn, args) == self.lane:
            rec = _Rec(when, None, fn, args)
            heapq.heappush(self.heap, [when, _SEQ_BIG, self.births, rec])
            self.births += 1
        op: list[Any] = ["sched", when, fn, args, rec, False]
        current.ops.append(op)
        handle = -2 - self.prov_count
        self.prov_count += 1
        self.prov[handle] = op
        return handle

    def schedule_batch(
        self,
        whens: list[float],
        fn: Callable[..., None],
        argses: list[tuple[Any, ...]],
    ) -> range:
        if len(whens) != len(argses):
            raise SimulationError("schedule_batch lists must have equal lengths")
        if whens and min(whens) < self.now:
            raise SimulationError(
                f"cannot schedule event at t={min(whens)!r} before now={self.now!r}"
            )
        current = self.current
        assert current is not None
        lane = self.lane
        lane_pure = self.engine._lane_pure
        recs: list[_Rec | None] = []
        for when, args in zip(whens, argses):
            if lane_pure(fn, args) == lane:
                rec: _Rec | None = _Rec(when, None, fn, args)
                heapq.heappush(self.heap, [when, _SEQ_BIG, self.births, rec])
                self.births += 1
            else:
                rec = None
            recs.append(rec)
        current.ops.append(
            ["batch", list(whens), fn, list(argses), recs, [False] * len(recs)]
        )
        # Real handles are allocated at merge replay; no eligible caller
        # keeps batch handles (and provisional ranges would not survive the
        # window), so an empty range is returned.
        return range(0, 0)

    def cancel(self, handle: int) -> None:
        if handle < 0:
            op = self.prov.get(handle)
            if op is None:
                raise SimulationError(f"unknown event handle: {handle!r}")
            rec = op[4]
            if rec is not None:
                # Own-lane birth: the worker owns it exclusively.
                if not rec.executed:
                    rec.void = True
                    op[5] = True
                return
            # Journaled newborn in another lane: safe only if the target
            # provably follows the cancelling event in sequential order.
            when_t = op[1]
            if when_t > self.now:
                op[5] = True
            elif when_t == self.now:
                raise SimulationError(
                    "in-window cancel of a simultaneous cross-lane event "
                    "is order-ambiguous under parallel drain"
                )
            return
        rec2 = self.claimed.get(handle)
        if rec2 is not None:
            if not rec2.executed:
                rec2.void = True
            return
        if not 0 <= handle < self.engine._seq:
            raise SimulationError(f"unknown event handle: {handle!r}")
        current = self.current
        assert current is not None
        current.ops.append(["cancel", handle])

    # -- journal sinks --------------------------------------------------------
    def metric_op(self, code: str, obj: Any, value: Any) -> None:
        current = self.current
        assert current is not None
        current.ops.append([code, obj, value])

    def span_op(
        self,
        recorder: Any,
        name: str,
        category: str,
        start: float,
        finish: float,
        parent: int | None,
        attrs: dict[str, Any],
    ) -> None:
        current = self.current
        assert current is not None
        current.ops.append(
            ["span", recorder, name, category, start, finish, parent, attrs]
        )

    def ensure(self, table: Any, peer: int) -> None:
        """Journal an idempotent connection ensure (replayed at merge)."""
        current = self.current
        assert current is not None
        current.ops.append(["ensure", table, peer])

    def fold_max(self, obj: Any, attr: str, value: float) -> None:
        """Fold a commutative running maximum on a shared scalar."""
        key = (id(obj), attr)
        slot = self.folds.get(key)
        if slot is None:
            self.folds[key] = [obj, attr, "max", value]
        elif value > slot[3]:
            slot[3] = value

    def fold_add(self, obj: Any, attr: str, value: float) -> None:
        """Fold a commutative sum on a shared scalar."""
        key = (id(obj), attr)
        slot = self.folds.get(key)
        if slot is None:
            self.folds[key] = [obj, attr, "add", value]
        else:
            slot[3] += value


def _run_lane_worker(ctx: _DrainCtx) -> _DrainCtx:
    """Execute one lane's window on the calling thread.

    Claimed events run unconditionally (pre-validated against the window
    cap); window-born locals run only while strictly inside the horizon.
    Once the heap head fails its condition nothing behind it can pass
    (claimed heads always sort before a blocked local), so the loop stops
    at the first refusal. Callback exceptions are captured with their
    event so the merge can re-raise at the exact global position.
    """
    _TLS.ctx = ctx
    _metrics_mod.set_drain_sink(ctx)
    _spans_mod.set_drain_sink(ctx)
    try:
        heap = ctx.heap
        cap_key = ctx.cap_key
        la_cap = ctx.la_cap
        pop = heapq.heappop
        while heap:
            head = heap[0]
            rec = head[3]
            if rec.void:
                pop(heap)
                continue
            when = head[0]
            if rec.seq is None and not (
                when < la_cap and (when, _SEQ_BIG) < cap_key
            ):
                break
            pop(heap)
            ctx.now = when
            ctx.current = rec
            rec.executed = True
            ctx.executed += 1
            fn = rec.fn
            assert fn is not None
            try:
                fn(*rec.args)
            except BaseException as exc:
                rec.failed = exc
                ctx.failed = rec
                break
    finally:
        ctx.current = None
        _TLS.ctx = None
        _metrics_mod.set_drain_sink(None)
        _spans_mod.set_drain_sink(None)
    return ctx


# -- process-backend journal encoding -----------------------------------------
class _EncodeError(Exception):
    """A journal referenced an object the process codec cannot ship."""


def _link_tags(network: Any) -> dict[int, tuple[str, int]]:
    out: dict[int, tuple[str, int]] = {}
    for group_name in ("nic_out", "nic_in", "uplink", "downlink"):
        for i, link in enumerate(getattr(network, group_name, ())):
            out[id(link)] = (group_name, i)
    return out


def _metric_descs(
    registries: list[tuple[str, Any]]
) -> dict[int, tuple[Any, ...]]:
    out: dict[int, tuple[Any, ...]] = {}
    for tag, reg in registries:
        if reg is None:
            continue
        for fam_name in sorted(reg._families):
            family = reg._families[fam_name]
            for values in sorted(family.children):
                child = family.children[values]
                out[id(child)] = (
                    tag, family.kind, family.name, family.label_keys,
                    values, tuple(getattr(child, "buckets", ()) or ()),
                )
        series = getattr(reg, "series", None)
        if series:
            for name in sorted(series):
                out[id(series[name])] = (tag, "series", name, (), (), ())
    return out


class _ProcessCodec:
    """Symbolic (un)marshalling of a worker journal across a fork pipe.

    Forked children share the parent's pre-window object graph but their
    post-window mutations are private, so ops must come back by *name*:
    metrics as ``(registry, kind, name, labels)``, links as ``(group, i)``,
    bound methods as ``(target-tag, method)``, connection tables by node
    id, and fold targets by their registered tag. Messages and other
    payloads ship by value (one pickle memo per blob keeps shared
    references shared). The parent decodes against its own objects and the
    merge path is then identical to thread mode.
    """

    def __init__(self, engine: "PartitionedEngine") -> None:
        cluster = engine._cluster
        self.engine = engine
        self.cluster = cluster
        self.registries: list[tuple[str, Any]] = [("stats", cluster.stats)]
        telemetry = engine.telemetry
        if telemetry is not None:
            self.registries.append(("metrics", telemetry.metrics))
        self.spans = None if telemetry is None else telemetry.spans
        self.fn_targets: dict[int, str] = {id(cluster): "cluster"}
        for tag, obj in engine._drain_targets.items():
            self.fn_targets.setdefault(id(obj), tag)
        self.link_tags = _link_tags(cluster.network)
        self.links: dict[tuple[str, int], Any] = {
            tag: link
            for link, tag in (
                (getattr(cluster.network, g)[i], (g, i))
                for (g, i) in self.link_tags.values()
            )
        }
        self.fold_tags: dict[int, str] = {
            id(obj): tag for tag, obj in engine._drain_targets.items()
        }
        self.metric_descs: dict[int, tuple[Any, ...]] | None = None

    # -- encode (child side) --------------------------------------------------
    def _enc_fn(self, fn: Callable[..., None]) -> tuple[str, str]:
        owner = getattr(fn, "__self__", None)
        tag = None if owner is None else self.fn_targets.get(id(owner))
        if tag is None:
            raise _EncodeError(
                f"process drain backend cannot ship callback {fn!r}; "
                "use drain_backend='thread'"
            )
        return (tag, fn.__name__)

    def _enc_val(self, value: Any) -> Any:
        if isinstance(value, tuple):
            return ("t", [self._enc_val(v) for v in value])
        if isinstance(value, list):
            return ("l", [self._enc_val(v) for v in value])
        tag = self.link_tags.get(id(value))
        if tag is not None:
            return ("k", tag)
        return ("v", value)

    def _enc_metric(self, obj: Any) -> tuple[Any, ...]:
        if self.metric_descs is None:
            self.metric_descs = _metric_descs(self.registries)
        desc = self.metric_descs.get(id(obj))
        if desc is None:
            # Created during this window: rescan once.
            self.metric_descs = _metric_descs(self.registries)
            desc = self.metric_descs.get(id(obj))
        if desc is None:
            raise _EncodeError(
                f"process drain backend cannot locate metric {obj!r} in "
                "the cluster stats or telemetry registries"
            )
        return desc

    def encode_ctx(self, ctx: _DrainCtx) -> bytes:
        rec_ids: dict[int, int] = {}
        recs: list[_Rec] = []

        def rid(rec: _Rec) -> int:
            key = id(rec)
            got = rec_ids.get(key)
            if got is None:
                got = rec_ids[key] = len(recs)
                recs.append(rec)
            return got

        for rec in ctx.recs:
            rid(rec)
        claimed_n = len(ctx.recs)
        enc_recs: list[Any] = []
        i = 0
        while i < len(recs):  # ops discover local recs as we encode
            rec = recs[i]
            ops_enc: list[Any] = []
            for op in rec.ops:
                code = op[0]
                if code == "sched":
                    ops_enc.append((
                        "sched", op[1], self._enc_fn(op[2]),
                        self._enc_val(op[3]),
                        -1 if op[4] is None else rid(op[4]), op[5],
                    ))
                elif code == "batch":
                    ops_enc.append((
                        "batch", list(op[1]), self._enc_fn(op[2]),
                        [self._enc_val(a) for a in op[3]],
                        [-1 if r is None else rid(r) for r in op[4]],
                        list(op[5]),
                    ))
                elif code == "cancel":
                    ops_enc.append(("cancel", op[1]))
                elif code == "span":
                    if op[1] is not self.spans:
                        raise _EncodeError(
                            "process drain backend can only journal the "
                            "session telemetry span recorder"
                        )
                    ops_enc.append(("span",) + tuple(op[2:]))
                elif code == "ensure":
                    ops_enc.append(("ensure", op[1].node_id, op[2]))
                else:  # metric mutation
                    ops_enc.append((code, self._enc_metric(op[1]), op[2]))
            failed = rec.failed
            if failed is not None:
                try:
                    pickle.dumps(failed)
                except Exception:
                    failed = SimulationError(
                        f"{type(rec.failed).__name__}: {rec.failed}"
                    )
            local = None
            if i >= claimed_n:
                local = (rec.when, self._enc_fn(rec.fn) if rec.fn else None,
                         self._enc_val(rec.args))
            enc_recs.append((rec.executed, rec.void, failed, ops_enc, local))
            i += 1
        folds_enc = []
        for slot in ctx.folds.values():
            tag = self.fold_tags.get(id(slot[0]))
            if tag is None:
                raise _EncodeError(
                    f"process drain backend has no registered tag for fold "
                    f"target {slot[0]!r}; call register_drain_target()"
                )
            folds_enc.append((tag, slot[1], slot[2], slot[3]))
        codec = self.engine.drain_state_codec
        state = None
        if codec is not None and self.engine.layout is not None:
            lo, hi = self.engine.layout.span(ctx.lane)
            state = codec[0](lo, hi)
        blob = {
            "lane": ctx.lane,
            "executed": ctx.executed,
            "claimed_n": claimed_n,
            "recs": enc_recs,
            "folds": folds_enc,
            "state": state,
        }
        return pickle.dumps(blob, protocol=pickle.HIGHEST_PROTOCOL)

    # -- decode (parent side) -------------------------------------------------
    def _dec_fn(self, enc: tuple[str, str]) -> Callable[..., None]:
        tag, name = enc
        target = self.cluster if tag == "cluster" else self.engine._drain_targets[tag]
        fn: Callable[..., None] = getattr(target, name)
        return fn

    def _dec_val(self, enc: Any) -> Any:
        code, payload = enc
        if code == "t":
            return tuple(self._dec_val(v) for v in payload)
        if code == "l":
            return [self._dec_val(v) for v in payload]
        if code == "k":
            return self.links[tuple(payload)]
        return payload

    def _dec_metric(self, desc: tuple[Any, ...]) -> Any:
        tag, kind, name, label_keys, values, buckets = desc
        reg = dict(self.registries)[tag]
        labels = dict(zip(label_keys, values))
        if kind == "counter":
            return reg.counter(name, **labels)
        if kind == "gauge":
            return reg.gauge(name, **labels)
        if kind == "histogram":
            return reg.histogram(name, buckets=tuple(buckets), **labels)
        if kind == "series":
            return reg.timeseries(name)
        raise SimulationError(f"unknown journaled metric kind {kind!r}")

    def decode_into(self, ctx: _DrainCtx, payload: bytes) -> None:
        blob = pickle.loads(payload)
        enc_recs = blob["recs"]
        claimed_n = blob["claimed_n"]
        recs: list[_Rec] = list(ctx.recs)
        for enc in enc_recs[claimed_n:]:
            local = enc[4]
            when, fn_enc, args_enc = local
            recs.append(_Rec(
                when, None,
                None if fn_enc is None else self._dec_fn(fn_enc),
                self._dec_val(args_enc),
            ))
        for rec, enc in zip(recs, enc_recs):
            executed, void, failed, ops_enc, _local = enc
            rec.executed = executed
            rec.void = void
            rec.failed = failed
            if failed is not None:
                ctx.failed = rec
            ops: list[list[Any]] = []
            for op in ops_enc:
                code = op[0]
                if code == "sched":
                    ops.append([
                        "sched", op[1], self._dec_fn(op[2]),
                        self._dec_val(op[3]),
                        None if op[4] < 0 else recs[op[4]], op[5],
                    ])
                elif code == "batch":
                    ops.append([
                        "batch", list(op[1]), self._dec_fn(op[2]),
                        [self._dec_val(a) for a in op[3]],
                        [None if r < 0 else recs[r] for r in op[4]],
                        list(op[5]),
                    ])
                elif code == "cancel":
                    ops.append(["cancel", op[1]])
                elif code == "span":
                    ops.append(["span", self.spans] + list(op[1:]))
                elif code == "ensure":
                    ops.append([
                        "ensure", self.cluster.connections[op[1]], op[2]
                    ])
                else:
                    ops.append([code, self._dec_metric(op[1]), op[2]])
            rec.ops = ops
        ctx.executed = blob["executed"]
        ctx.folds = {}
        for tag, attr, kind, value in blob["folds"]:
            obj = self.engine._drain_targets[tag]
            ctx.folds[(id(obj), attr)] = [obj, attr, kind, value]
        codec = self.engine.drain_state_codec
        if codec is not None and blob["state"] is not None:
            codec[1](blob["state"])


class PartitionedEngine(Engine):
    """Multi-lane event engine executing the exact global event order.

    Drop-in replacement for :class:`~repro.sim.engine.Engine` (same
    scheduling/cancel/run API, same clock semantics, same telemetry
    accounting). Construct with the partition count — and optionally a
    drain worker pool — then call :meth:`attach_cluster` once the
    simulated cluster exists so the layout and lookahead table can be
    derived from its modeled network.
    """

    def __init__(
        self,
        partitions: int,
        drain_workers: int = 1,
        drain_backend: str = "thread",
    ) -> None:
        super().__init__()
        if partitions < 1:
            raise ConfigError(f"need at least one partition, got {partitions}")
        if drain_workers < 1:
            raise ConfigError(
                f"need at least one drain worker, got {drain_workers}"
            )
        if drain_backend not in ("thread", "process"):
            raise ConfigError(
                f"drain backend must be 'thread' or 'process', "
                f"got {drain_backend!r}"
            )
        self.partitions = int(partitions)
        self.drain_workers = int(drain_workers)
        self.drain_backend = drain_backend
        #: Minimum events (across >= 2 lanes) worth dispatching a window
        #: for; below this the coordinator drains serially. Tunable —
        #: results are bit-identical at any value.
        self.parallel_min_claim = 2
        #: Lane indices: ``0..partitions-1`` compute, then fabric, control.
        self._fabric = self.partitions
        self._control = self.partitions + 1
        self._lanes: list[list[list[Any]]] = [
            [] for _ in range(self.partitions + 2)
        ]
        #: Live (scheduled, not executed, not cancelled) entries by handle.
        self._entries: dict[int, list[Any]] = {}
        #: Registered scheduling entry points: underlying function -> kind.
        self._routes: dict[Any, int] = {}
        self._node_partition: list[int] = []
        self.layout: PartitionLayout | None = None
        self.lookahead: LookaheadTable | None = None
        self._channels: dict[int, PartitionChannel] = {}
        self._current_lane = self._control
        self._drain_bound: tuple[float, int] = (_INF, -1)
        # PDES self-accounting — kept out of the cluster stats registry on
        # purpose: parity tests pin stats snapshots bit-identical to the
        # sequential engine, so this surfaces via partition_report() only.
        self._lane_events = [0] * (self.partitions + 2)
        self._drains = 0
        self._longest_drain = 0
        #: Drain-run length histogram: ``_drain_hist[i]`` counts runs of
        #: length ``[2**(i-1), 2**i)`` (index 0 counts empty runs).
        self._drain_hist: list[int] = []
        # Parallel-drain wiring and accounting.
        self._cluster: Any = None
        self._la_min = _INF
        self._pool: ThreadPoolExecutor | None = None
        self._unsafe_reason: str | None = None
        self._last_fallback: str | None = "never ran"
        self._windows = 0
        self._window_events = 0
        self._merge_live_events = 0
        self._imbalance_sum = 0.0
        self._occupancy_sum = 0.0
        # Merge-replay scratch state (valid only inside _merge_window).
        self._replay: list[tuple[float, int, int, Any]] = []
        self._replay_batches = 0
        self._merge_cap: tuple[float, float] = (_INF, _INF)
        self._merge_la_cap = _INF
        #: Optional ``(collect(lo, hi) -> blob, apply(blob))`` pair used by
        #: the process backend to ship per-lane simulation state home.
        self.drain_state_codec: tuple[
            Callable[[int, int], Any], Callable[[Any], None]
        ] | None = None
        #: Named objects the process codec may reference symbolically
        #: (fold targets, callback owners). Thread mode ignores this.
        self._drain_targets: dict[str, Any] = {}

    # -- wiring ------------------------------------------------------------------
    def attach_cluster(self, cluster: Any) -> None:
        """Derive layout/lookahead from the cluster's modeled network and
        register its scheduling entry points as routed functions."""
        layout = PartitionLayout.build(cluster.network.topology, self.partitions)
        self.layout = layout
        self._node_partition = layout.part_of
        self.lookahead = LookaheadTable(layout, cluster.network)
        # The parallel-window ceiling must also cover *intra*-partition
        # remote sends: a compute event can send to another node of its
        # own partition, which round-trips through the fabric lane and
        # lands back on the same compute lane after only the intra
        # latency. The window bound is therefore the minimum over every
        # distinct-node pair, not just cross-partition pairs.
        la = self.lookahead.min_lookahead()
        for p in range(layout.partitions):
            lo, hi = layout.span(p)
            if hi - lo > 1:
                la = min(
                    la, cluster.network.min_cross_latency((lo, hi), (lo, hi))
                )
        self._la_min = la
        self._cluster = cluster
        self._channels = {}
        for a in range(layout.partitions):
            for b in range(layout.partitions):
                if a != b:
                    self._channels[a * self.partitions + b] = PartitionChannel(
                        a, b, self.lookahead.lookahead(a, b)
                    )
        cls = type(cluster)
        self.register_delivery(cls._deliver)
        self.register_injection(cls._inject)
        inject_batched = getattr(cls, "_inject_batched", None)
        if inject_batched is not None:
            self.register_injection(inject_batched)

    def register_delivery(self, fn: Callable[..., None]) -> None:
        """Mark ``fn(msg, ...)`` as a delivery entry point: its events run
        on the compute lane of ``msg.dst``'s partition, and cross-partition
        schedules are validated through the pair channel."""
        self._routes[getattr(fn, "__func__", fn)] = _DELIVERY

    def register_injection(self, fn: Callable[..., None]) -> None:
        """Mark ``fn(msg, ...)`` as a link-admission entry point: remote
        sends serialise on the shared FIFO link state (zero lookahead) and
        ride the fabric lane; self-sends touch no links and stay on the
        node's compute lane."""
        self._routes[getattr(fn, "__func__", fn)] = _INJECTION

    def mark_parallel_unsafe(self, reason: str) -> None:
        """Pin this engine to serial drains (e.g. a transport interposer
        shares retransmit state across lanes outside the journal API).
        Results are bit-identical either way; this only disables the
        worker pool."""
        self._unsafe_reason = reason

    def register_drain_target(self, tag: str, obj: Any) -> None:
        """Name an object so process-backend journals can reference it
        symbolically (fold targets, callback owners)."""
        self._drain_targets[tag] = obj

    # -- classification ----------------------------------------------------------
    def _lane_of(
        self, when: float, fn: Callable[..., None], args: tuple[Any, ...]
    ) -> int:
        kind = self._routes.get(getattr(fn, "__func__", fn))
        if kind is None or not args:
            return self._control
        msg = args[0]
        table = self._node_partition
        if kind == _DELIVERY:
            dst_partition = table[msg.dst]
            src_partition = table[msg.src]
            if src_partition != dst_partition:
                self._channels[
                    src_partition * self.partitions + dst_partition
                ].record(when, msg.send_time)
            return dst_partition
        if msg.src == msg.dst:
            return table[msg.dst]
        return self._fabric

    def _lane_pure(  # repro: effect=pure
        self, fn: Callable[..., None], args: tuple[Any, ...]
    ) -> int:
        """Lane classification without the channel side effect — used by
        drain workers; the channel records at merge replay, which is the
        event's sequential schedule position."""
        kind = self._routes.get(getattr(fn, "__func__", fn))
        if kind is None or not args:
            return self._control
        msg = args[0]
        table = self._node_partition
        if kind == _DELIVERY:
            return table[msg.dst]
        if msg.src == msg.dst:
            return table[msg.dst]
        return self._fabric

    # -- bookkeeping --------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def now(self) -> float:
        """Current simulated time; on a drain worker, the worker's clock."""
        ctx = getattr(_TLS, "ctx", None)
        return self._now if ctx is None else ctx.now

    @property
    def journal(self) -> Any:
        """The calling thread's drain journal inside a window, else None."""
        return getattr(_TLS, "ctx", None)

    # -- scheduling ---------------------------------------------------------------
    def call_at(self, when: float, fn: Callable[..., None], *args: Any) -> int:
        ctx = getattr(_TLS, "ctx", None)
        if ctx is not None:
            return ctx.call_at(when, fn, args)
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event at t={when!r} before now={self._now!r}"
            )
        handle = self._seq
        self._seq = handle + 1
        entry: list[Any] = [when, handle, fn, args]
        self._entries[handle] = entry
        lane = self._lane_of(when, fn, args)
        heapq.heappush(self._lanes[lane], entry)
        if self._running and lane != self._current_lane:
            bound_when, bound_seq = self._drain_bound
            if when < bound_when or (when == bound_when and handle < bound_seq):
                self._drain_bound = (when, handle)
        return handle

    def call_after(self, delay: float, fn: Callable[..., None], *args: Any) -> int:
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        return self.call_at(self.now + delay, fn, *args)

    def schedule_batch(
        self,
        whens: list[float],
        fn: Callable[..., None],
        argses: list[tuple[Any, ...]],
    ) -> range:
        ctx = getattr(_TLS, "ctx", None)
        if ctx is not None:
            return ctx.schedule_batch(whens, fn, argses)
        if len(whens) != len(argses):
            raise SimulationError("schedule_batch lists must have equal lengths")
        if whens and min(whens) < self._now:
            raise SimulationError(
                f"cannot schedule event at t={min(whens)!r} before now={self._now!r}"
            )
        first = self._seq
        seq = first
        entries = self._entries
        lanes = self._lanes
        push = heapq.heappush
        running = self._running
        current = self._current_lane
        for when, args in zip(whens, argses):
            entry: list[Any] = [when, seq, fn, args]
            entries[seq] = entry
            lane = self._lane_of(when, fn, args)
            push(lanes[lane], entry)
            if running and lane != current:
                bound_when, bound_seq = self._drain_bound
                if when < bound_when or (when == bound_when and seq < bound_seq):
                    self._drain_bound = (when, seq)
            seq += 1
        self._seq = seq
        return range(first, seq)

    def cancel(self, handle: int) -> None:
        """Cancel by handle: the entry leaves the live table immediately
        and is voided in place in its lane heap (payload freed, heap node
        skipped at pop), so cancellation is bounded by construction.
        Cancelling an already-executed handle is a tolerated no-op."""
        ctx = getattr(_TLS, "ctx", None)
        if ctx is not None:
            ctx.cancel(handle)
            return
        if not 0 <= handle < self._seq:
            raise SimulationError(f"unknown event handle: {handle!r}")
        entry = self._entries.pop(handle, None)
        if entry is not None:
            entry[2] = None
            entry[3] = ()

    # -- running ------------------------------------------------------------------
    def _min_lane(self) -> int:
        """Lane holding the global-minimum live event, or -1 when drained.

        Voided (cancelled) heads are purged as a side effect so lane heads
        are live afterwards.
        """
        best = -1
        best_when = 0.0
        best_seq = -1
        pop = heapq.heappop
        for idx, heap in enumerate(self._lanes):
            while heap and heap[0][2] is None:
                pop(heap)
            if heap:
                head = heap[0]
                when = head[0]
                if (
                    best < 0
                    or when < best_when
                    or (when == best_when and head[1] < best_seq)
                ):
                    best = idx
                    best_when = when
                    best_seq = head[1]
        return best

    def step(self) -> bool:
        """Execute the next live event. Returns False when drained."""
        lane = self._min_lane()
        if lane < 0:
            return False
        entry = heapq.heappop(self._lanes[lane])
        del self._entries[entry[1]]
        self._now = entry[0]
        self._events_executed += 1
        self._lane_events[lane] += 1
        entry[2](*entry[3])
        return True

    def _note_drain_len(self, run_len: int) -> None:
        bucket = run_len.bit_length()
        hist = self._drain_hist
        while len(hist) <= bucket:
            hist.append(0)
        hist[bucket] += 1
        if run_len > self._longest_drain:
            self._longest_drain = run_len

    def _drain_one(
        self,
        lane_idx: int,
        until: float | None,
        max_events: int | None,
        executed: int,
    ) -> int:
        """One conservative serial drain run on ``lane_idx`` (coordinator).

        Stays on the lane while its head is strictly below every other
        lane's earliest entry. The bound shrinks in place whenever an
        executed callback pushes work onto another lane
        (call_at/schedule_batch), so the run extends exactly as far as
        safety allows. Returns the updated executed count.
        """
        lanes = self._lanes
        entries = self._entries
        pop = heapq.heappop
        lane = lanes[lane_idx]
        bound_when = _INF
        bound_seq = -1
        for idx, other in enumerate(lanes):
            if idx != lane_idx and other:
                head = other[0]
                when = head[0]
                if when < bound_when or (
                    when == bound_when and head[1] < bound_seq
                ):
                    bound_when = when
                    bound_seq = head[1]
        self._drain_bound = (bound_when, bound_seq)
        self._current_lane = lane_idx
        self._drains += 1
        run_len = 0
        while lane:
            head = lane[0]
            fn = head[2]
            if fn is None:
                pop(lane)
                continue
            when = head[0]
            seq = head[1]
            bound_when, bound_seq = self._drain_bound
            if when > bound_when or (
                when == bound_when and seq > bound_seq
            ):
                break
            if until is not None and when > until:
                break
            if max_events is not None and executed >= max_events:
                break
            pop(lane)
            del entries[seq]
            self._now = when
            executed += 1
            run_len += 1
            fn(*head[3])
        self._lane_events[lane_idx] += run_len
        self._note_drain_len(run_len)
        return executed

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Drain the lanes in exact global ``(when, seq)`` order.

        Clock semantics match :meth:`Engine.run` exactly: with ``until``
        set, later events stay queued and the clock lands on ``until``.
        With ``drain_workers > 1`` (and an eligible configuration) safe
        per-lane windows execute on the worker pool and their journals are
        merged at each sync point; every observable — parents, clock,
        stats, spans, handles — is bit-identical to the serial drain.
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        reason = self._parallel_fallback_reason(max_events)
        self._last_fallback = reason
        self._running = True
        executed = 0
        try:
            parallel = reason is None
            while True:
                lane_idx = self._min_lane()
                if lane_idx < 0:
                    if until is not None:
                        self._now = max(self._now, until)
                    break
                lane = self._lanes[lane_idx]
                if until is not None and lane[0][0] > until:
                    self._now = until
                    break
                if max_events is not None and executed >= max_events:
                    break
                if parallel and lane_idx < self.partitions:
                    window = self._claim_window(
                        until,
                        None if max_events is None else max_events - executed,
                    )
                    if window is not None:
                        executed = self._execute_window(window, executed)
                        continue
                executed = self._drain_one(lane_idx, until, max_events, executed)
        finally:
            self._running = False
            self._current_lane = self._control
            # Folded out of the hot loop, exactly like the base engine, so
            # the telemetry counter families stay bit-identical.
            self._events_executed += executed
            if self.telemetry is not None and executed:
                self.telemetry.metrics.counter("engine_events").add(executed)
        return self._now

    def run_until_quiescent(self, max_events: int = 100_000_000) -> float:
        """Drain every event; raise if the bound is hit (runaway simulation)."""
        start = self._events_executed
        self.run(max_events=max_events)
        if self._entries:
            raise SimulationError(
                f"simulation still active after {self._events_executed - start} events"
            )
        return self._now

    # -- parallel drain windows ---------------------------------------------------
    def _parallel_fallback_reason(self, max_events: int | None) -> str | None:
        """Why this run must drain serially, or None when windows may run.

        The fallback is free of observable consequences — serial and
        parallel drains are bit-identical — so eligibility can be decided
        conservatively per run.
        """
        if self.drain_workers <= 1:
            return "drain_workers=1"
        if self.partitions < 2:
            return "single partition"
        if self.layout is None or self._cluster is None:
            return "no cluster attached"
        if self._unsafe_reason is not None:
            return self._unsafe_reason
        if not self._la_min > 0.0 or self._la_min == _INF:
            return "no usable cross-partition lookahead"
        cluster_dict = self._cluster.__dict__
        for name in ("send", "send_batch", "_deliver", "_inject", "_inject_batched"):
            if name in cluster_dict:
                return (
                    f"cluster.{name} interposer installed (sanitizer or "
                    "fault injector observes global order)"
                )
        if max_events is not None and max_events < _MIN_PARALLEL_BUDGET:
            return "small max_events budget needs exact serial accounting"
        if self.drain_backend == "process":
            if not hasattr(os, "fork"):
                return "process drain backend needs os.fork"
            if self.drain_state_codec is None:
                return "process drain backend needs a drain_state_codec"
        return None

    def _claim_window(
        self, until: float | None, remaining: int | None
    ) -> tuple[list[_DrainCtx], dict[int, _Rec]] | None:
        """Claim one parallel window, or None when a serial step is better.

        The cap key is the strict upper bound every claim must stay below:
        the fabric head, the control head and the ``until`` horizon (the
        latter inclusive of equal times, matching serial semantics). The
        lookahead ceiling ``T0 + L`` additionally bounds claim *times*
        (inclusive: a window-born cross delivery at exactly ``T0 + L``
        carries a merge-assigned seq and sorts after every claimed event
        at that time).
        """
        lanes = self._lanes
        cap_key: tuple[float, float] = (_INF, _INF)
        fabric = lanes[self._fabric]
        if fabric:
            cap_key = (fabric[0][0], fabric[0][1])
        control = lanes[self._control]
        if control and (control[0][0], control[0][1]) < cap_key:
            cap_key = (control[0][0], control[0][1])
        if until is not None and (until, _INF) < cap_key:
            cap_key = (until, _INF)
        t0 = _INF
        for q in range(self.partitions):
            heap = lanes[q]
            if heap and heap[0][0] < t0:
                t0 = heap[0][0]
        if t0 == _INF:
            return None
        la_cap = t0 + self._la_min
        pop = heapq.heappop
        claims: list[tuple[int, list[list[Any]]]] = []
        total = 0
        for q in range(self.partitions):
            heap = lanes[q]
            out: list[list[Any]] = []
            while heap:
                head = heap[0]
                if head[2] is None:
                    pop(heap)
                    continue
                when = head[0]
                if when > la_cap or not (when, head[1]) < cap_key:
                    break
                pop(heap)
                out.append(head)
            if out:
                claims.append((q, out))
                total += len(out)
        if (
            len(claims) < 2
            or total < self.parallel_min_claim
            or (remaining is not None and total + 1024 > remaining)
        ):
            for q, entries in claims:
                heap = lanes[q]
                for entry in entries:
                    heapq.heappush(heap, entry)
            return None
        ctxs: list[_DrainCtx] = []
        window_claimed: dict[int, _Rec] = {}
        for q, entries in claims:
            ctx = _DrainCtx(self, q, cap_key, la_cap)
            for entry in entries:
                seq = entry[1]
                del self._entries[seq]
                rec = _Rec(entry[0], seq, entry[2], entry[3])
                ctx.recs.append(rec)
                ctx.claimed[seq] = rec
                # Entries arrive in key order, so the list is heap-valid.
                ctx.heap.append([entry[0], seq, 0, rec])
                window_claimed[seq] = rec
            ctxs.append(ctx)
        return ctxs, window_claimed

    def _ensure_pool(self) -> ThreadPoolExecutor:
        pool = self._pool
        if pool is None:
            pool = self._pool = ThreadPoolExecutor(
                max_workers=self.drain_workers, thread_name_prefix="drain"
            )
        return pool

    def _execute_window(
        self, window: tuple[list[_DrainCtx], dict[int, _Rec]], executed: int
    ) -> int:
        """Dispatch one claimed window to the workers and merge it."""
        ctxs, window_claimed = window
        if self.drain_backend == "process":
            self._run_window_process(ctxs)
        else:
            pool = self._ensure_pool()
            futures = [pool.submit(_run_lane_worker, ctx) for ctx in ctxs[1:]]
            # The coordinator doubles as the first worker: it would only
            # block on the futures otherwise.
            _run_lane_worker(ctxs[0])
            for future in futures:
                future.result()
        # Window accounting (parallel drains count as one run per lane).
        self._windows += 1
        window_events = 0
        max_lane = 0
        for ctx in ctxs:
            self._drains += 1
            self._lane_events[ctx.lane] += ctx.executed
            self._note_drain_len(ctx.executed)
            window_events += ctx.executed
            if ctx.executed > max_lane:
                max_lane = ctx.executed
        self._window_events += window_events
        if max_lane:
            mean = window_events / len(ctxs)
            self._imbalance_sum += max_lane / mean
            self._occupancy_sum += mean / max_lane
        executed += window_events
        return self._merge_window(ctxs, window_claimed, executed)

    def _run_window_process(self, ctxs: list[_DrainCtx]) -> None:
        """Fork one child per worker lane; the coordinator runs lane 0.

        Children inherit the full pre-window state (including the
        shared-memory CSR mapping), execute their lane exactly as a thread
        worker would, and ship the journal back symbolically encoded.
        """
        codec = _ProcessCodec(self)
        children: list[tuple[int, int, _DrainCtx]] = []
        for ctx in ctxs[1:]:
            read_fd, write_fd = os.pipe()
            pid = os.fork()
            if pid == 0:
                status = 0
                try:
                    os.close(read_fd)
                    try:
                        _run_lane_worker(ctx)
                        payload = codec.encode_ctx(ctx)
                        blob = pickle.dumps(("ok", payload))
                    except BaseException as exc:  # ship the failure home
                        blob = pickle.dumps(("err", f"{type(exc).__name__}: {exc}"))
                        status = 1
                    with os.fdopen(write_fd, "wb") as pipe:
                        pipe.write(blob)
                except BaseException:
                    status = 1
                finally:
                    os._exit(status)
            os.close(write_fd)
            children.append((pid, read_fd, ctx))
        _run_lane_worker(ctxs[0])
        failures: list[str] = []
        for pid, read_fd, ctx in children:
            with os.fdopen(read_fd, "rb") as pipe:
                raw = pipe.read()
            os.waitpid(pid, 0)
            if not raw:
                failures.append(f"lane {ctx.lane}: worker died without a journal")
                continue
            kind, payload = pickle.loads(raw)
            if kind != "ok":
                failures.append(f"lane {ctx.lane}: {payload}")
                continue
            codec.decode_into(ctx, payload)
        if failures:
            self._restore_unexecuted(ctxs)
            raise SimulationError(
                "process drain window failed: " + "; ".join(failures)
            )

    def _restore_unexecuted(self, ctxs: list[_DrainCtx]) -> None:
        """Put claimed-but-unexecuted events back so post-exception engine
        state matches the sequential engine (which never popped them)."""
        for ctx in ctxs:
            heap = self._lanes[ctx.lane]
            for rec in ctx.recs:
                if not rec.executed and not rec.void and rec.seq is not None:
                    entry: list[Any] = [rec.when, rec.seq, rec.fn, rec.args]
                    self._entries[rec.seq] = entry
                    heapq.heappush(heap, entry)

    def _apply_folds(self, ctxs: list[_DrainCtx]) -> None:
        for ctx in ctxs:
            for slot in ctx.folds.values():
                obj, attr, kind, value = slot
                if kind == "max":
                    if value > getattr(obj, attr):
                        setattr(obj, attr, value)
                else:
                    setattr(obj, attr, getattr(obj, attr) + value)

    def _merge_window(
        self,
        ctxs: list[_DrainCtx],
        window_claimed: dict[int, _Rec],
        executed: int,
    ) -> int:
        """Replay every lane journal in global ``(when, seq)`` order.

        One heap drives the replay: executed events' journal batches enter
        under their key; schedule ops replayed inside a batch allocate the
        real seq right there — the sequential allocation position — and
        either enqueue the born event's own batch (it ran locally), insert
        a live entry into the real lanes, or (fabric newborns whose key
        precedes a remaining batch) execute it on the spot at its exact
        global position. Channel validation happens here too, at the born
        event's sequential schedule position.
        """
        replay: list[tuple[float, int, int, Any]] = []
        self._replay = replay
        self._replay_batches = 0
        # Every batch key is strictly below the window cap, so a newborn
        # at or past the cap can never precede remaining replay work and
        # stays a plain lane entry for the outer loop. Batch *times* are
        # additionally bounded by the lookahead ceiling, so a newborn at
        # or past the ceiling always sorts after every remaining batch
        # (equal-time claimed batches carry smaller, pre-window seqs).
        self._merge_cap = ctxs[0].cap_key
        self._merge_la_cap = ctxs[0].la_cap
        for ctx in ctxs:
            for rec in ctx.recs:
                if rec.executed:
                    assert rec.seq is not None
                    heapq.heappush(replay, (rec.when, rec.seq, 0, rec))
                    self._replay_batches += 1
        entries = self._entries
        while replay:
            when, seq, kind, payload = heapq.heappop(replay)
            if kind == 1:
                # A window-born fabric event: link admission interleaves
                # with the remaining batches in exact global order. Once
                # no batches remain it stays queued for the outer loop.
                if self._replay_batches == 0:
                    break
                entry = payload
                if entry[2] is None:
                    continue
                del entries[seq]
                fn = entry[2]
                args = entry[3]
                entry[2] = None
                entry[3] = ()
                self._now = when
                self._lane_events[self._fabric] += 1
                self._merge_live_events += 1
                executed += 1
                fn(*args)
                continue
            self._replay_batches -= 1
            rec = payload
            self._now = when
            self._apply_ops(rec, (when, seq), window_claimed)
            if rec.failed is not None:
                # The failing callback's pre-exception effects are applied
                # (they happened), unexecuted claims go back to their
                # lanes, and the failure surfaces at its exact global
                # position. Events *behind* the failure that already ran
                # on other lanes stay applied — acceptable divergence:
                # post-exception engine state is unspecified, and fault
                # configurations drain serially anyway.
                self._restore_unexecuted(ctxs)
                self._apply_folds(ctxs)
                raise rec.failed
        self._apply_folds(ctxs)
        return executed

    def _apply_ops(
        self,
        rec: _Rec,
        batch_key: tuple[float, int],
        window_claimed: dict[int, _Rec],
    ) -> None:
        for op in rec.ops:
            code = op[0]
            if code == "sched":
                self._merge_sched(op[1], op[2], op[3], op[4], op[5])
            elif code == "batch":
                whens, fn, argses, locals_, flags = (
                    op[1], op[2], op[3], op[4], op[5]
                )
                for i in range(len(whens)):
                    self._merge_sched(
                        whens[i], fn, argses[i], locals_[i], flags[i]
                    )
            elif code == "cancel":
                handle = op[1]
                target = window_claimed.get(handle)
                if target is not None:
                    if not target.executed:
                        # Claim never ran (failure stop): cancel it like
                        # the sequential engine would have.
                        target.void = True
                    elif not (target.when, handle) < batch_key:
                        raise SimulationError(
                            "parallel drain executed an event that a "
                            "cross-lane callback cancelled first — the "
                            "configuration schedules cancels inside the "
                            "lookahead window"
                        )
                    continue
                self.cancel(handle)
            elif code == "cadd":
                op[1].value += op[2]
            elif code == "gset":
                op[1].value = op[2]
            elif code == "gadd":
                op[1].value += op[2]
            elif code == "gmax":
                if op[2] > op[1].value:
                    op[1].value = op[2]
            elif code == "hobs":
                op[1].observe(op[2])
            elif code == "tobs":
                op[1].observe(op[2][0], op[2][1])
            elif code == "span":
                op[1].record(
                    op[2], op[3], op[4], op[5], parent=op[6], **op[7]
                )
            elif code == "ensure":
                op[1].ensure(op[2])
            else:
                raise SimulationError(f"unknown journal op {code!r}")

    def _merge_sched(
        self,
        when: float,
        fn: Callable[..., None],
        args: tuple[Any, ...],
        local: _Rec | None,
        cancelled: bool,
    ) -> None:
        """Replay one journaled schedule at its sequential position."""
        seq = self._seq
        self._seq = seq + 1
        if local is not None:
            local.seq = seq
            if cancelled or local.void:
                return
            if local.executed:
                heapq.heappush(self._replay, (when, seq, 0, local))
                self._replay_batches += 1
                return
            # Born inside the window but past the horizon: becomes a real
            # entry in its lane, executed by the outer loop in key order.
            entry: list[Any] = [when, seq, fn, args]
            self._entries[seq] = entry
            heapq.heappush(self._lanes[self._lane_of(when, fn, args)], entry)
            return
        if cancelled:
            return
        lane = self._lane_of(when, fn, args)
        entry = [when, seq, fn, args]
        self._entries[seq] = entry
        heapq.heappush(self._lanes[lane], entry)
        if lane == self._fabric:
            # Link admissions interleave with remaining batches in key
            # order; the marker is popped at its exact global position
            # (or left queued once no batch can precede it).
            if (when, seq) < self._merge_cap:
                heapq.heappush(self._replay, (when, seq, 1, entry))
        elif when < self._merge_la_cap:
            if lane == self._control:
                raise SimulationError(
                    "a drain worker scheduled a control-lane event inside "
                    "the lookahead window; its interleaving with claimed "
                    "events cannot be proven safe — mark_parallel_unsafe() "
                    "or keep drain_workers=1 for this workload"
                )
            # Deliveries arrive at least one full lookahead after their
            # send, which puts them at or past the window ceiling;
            # landing below it means the link model broke the bound.
            raise SimulationError(
                "message delivery landed inside the lookahead window "
                "during a parallel drain"
            )

    # -- reporting ----------------------------------------------------------------
    def _drain_hist_rendered(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for i, count in enumerate(self._drain_hist):
            if not count:
                continue
            if i == 0:
                label = "0"
            elif i == 1:
                label = "1"
            else:
                lo = 1 << (i - 1)
                hi = (1 << i) - 1
                label = f"{lo}-{hi}"
            out[label] = count
        return out

    def partition_report(self) -> dict[str, Any]:
        """PDES self-accounting: layout, lane loads, drain runs, windows,
        occupancy/imbalance, channels.

        Deliberately *not* part of the cluster stats registry — parity
        tests pin stats snapshots bit-identical across partition counts,
        and this accounting only exists on the partitioned engine.
        """
        layout = self.layout
        channels = []
        for key in sorted(self._channels):
            channel = self._channels[key]
            channels.append(
                {
                    "src": channel.src_partition,
                    "dst": channel.dst_partition,
                    "lookahead": channel.lookahead,
                    "pushes": channel.pushes,
                    "min_slack": channel.min_slack if channel.pushes else None,
                }
            )
        windows = self._windows
        return {
            "partitions": self.partitions,
            "bounds": None if layout is None else list(layout.bounds),
            "aligned": None if layout is None else layout.aligned,
            "lane_events": {
                "compute": list(self._lane_events[: self.partitions]),
                "fabric": self._lane_events[self._fabric],
                "control": self._lane_events[self._control],
            },
            "drains": self._drains,
            "longest_drain": self._longest_drain,
            "drain_run_hist": self._drain_hist_rendered(),
            "drain_workers": self.drain_workers,
            "drain_backend": self.drain_backend,
            "parallel_windows": windows,
            "parallel_window_events": self._window_events,
            "merge_live_events": self._merge_live_events,
            "parallel_fallback": self._last_fallback,
            "occupancy": (
                self._occupancy_sum / windows if windows else None
            ),
            "imbalance": (
                self._imbalance_sum / windows if windows else None
            ),
            "channels": channels,
        }
