"""Generator-based processes on top of the event engine.

A *process* is a Python generator that yields:

- :class:`~repro.sim.events.Timeout` — sleep for simulated time;
- :class:`~repro.sim.events.Event` — wait until the event fires (the event's
  value is sent back into the generator);
- another :class:`Process` — wait for that process to finish (its return
  value is sent back).

A process is itself waitable: it completes when the generator returns, and
its completion event carries the generator's return value.
"""

from __future__ import annotations

from collections.abc import Callable, Generator
from typing import Any

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.events import Event, Timeout


class Process:
    """Run ``gen`` as a simulated process on ``engine``."""

    def __init__(self, engine: Engine, gen: Generator[Any, Any, Any], name: str = "") -> None:
        if not isinstance(gen, Generator):
            raise SimulationError(f"Process needs a generator, got {type(gen).__name__}")
        self._engine = engine
        self._gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.done = Event(engine)
        engine.call_after(0.0, self._resume, None)

    @property
    def finished(self) -> bool:
        return self.done.fired

    @property
    def result(self) -> Any:
        return self.done.value

    # -- driver ------------------------------------------------------------
    def _resume(self, value: Any) -> None:
        try:
            yielded = self._gen.send(value)
        except StopIteration as stop:
            self.done.succeed(stop.value)
            return
        if isinstance(yielded, Timeout):
            self._engine.call_after(yielded.delay, self._resume, None)
        elif isinstance(yielded, Event):
            yielded.add_callback(self._resume)
        elif isinstance(yielded, Process):
            yielded.done.add_callback(self._resume)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported {type(yielded).__name__}"
            )

    def add_callback(self, cb: Callable[[Any], None]) -> None:
        """Waitable protocol: forward to the completion event."""
        self.done.add_callback(cb)
