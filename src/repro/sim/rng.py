"""Deterministic random-stream management.

Every stochastic component (graph generation, root sampling, workload
perturbation) takes a named substream derived from one master seed, so a
whole experiment is reproducible from a single integer and adding a new
consumer never perturbs existing streams.
"""

from __future__ import annotations

import hashlib

import numpy as np


def substream(master_seed: int, *names: object) -> np.random.Generator:
    """Derive an independent ``numpy`` generator for a named purpose.

    The stream key hashes the master seed together with the name path, e.g.
    ``substream(42, "kronecker", level)``; SHA-256 keeps the derived seeds
    well distributed even for adjacent inputs.
    """
    h = hashlib.sha256()
    h.update(str(int(master_seed)).encode())
    for n in names:
        h.update(b"/")
        h.update(str(n).encode())
    seed = int.from_bytes(h.digest()[:8], "little")
    return np.random.default_rng(seed)
