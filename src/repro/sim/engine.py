"""The discrete-event engine: a time-ordered callback queue.

Design notes
------------
The engine is intentionally tiny. Everything that happens in the simulated
machine is an entry ``(time, seq, callback, args)`` in a binary heap. ``seq``
is a monotone counter that (a) breaks ties deterministically and (b) keeps
heap comparisons away from unorderable payloads.

Simulated time is a float in **seconds**. The engine never advances past an
event without executing it, and callbacks may schedule further events at or
after the current time (scheduling in the past is an error — it would make
the simulation acausal).
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from typing import Any

from repro.errors import SimulationError


class Engine:
    """A deterministic event loop over simulated time."""

    @property
    def journal(self) -> Any:
        """The calling thread's active drain journal, or ``None``.

        The sequential engine never journals; the property exists so
        callback code can write ``engine.journal``-aware mutations (fold
        a shared maximum, count shared records) with one attribute read
        on the sequential path.
        :class:`repro.sim.partition.PartitionedEngine` overrides this
        with a thread-contextual lookup that returns the worker's
        journal inside a parallel drain window.
        """
        return None

    def __init__(self) -> None:
        self._queue: list[tuple[float, int, Callable[..., None], tuple[Any, ...]]] = []
        self._seq = 0
        self._now = 0.0
        self._events_executed = 0
        self._running = False
        self._cancelled: set[int] = set()
        #: Optional :class:`repro.telemetry.Telemetry`; when set, each
        #: ``run`` folds its executed-event count into the metrics
        #: registry (zero cost on the per-event hot path).
        self.telemetry = None

    # -- clock ---------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total number of callbacks executed so far."""
        return self._events_executed

    def __len__(self) -> int:
        return len(self._queue) - len(self._cancelled)

    # -- scheduling ------------------------------------------------------------
    def call_at(self, when: float, fn: Callable[..., None], *args: Any) -> int:
        """Schedule ``fn(*args)`` at absolute simulated time ``when``.

        Returns an event handle usable with :meth:`cancel`.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event at t={when!r} before now={self._now!r}"
            )
        handle = self._seq
        heapq.heappush(self._queue, (when, handle, fn, args))
        self._seq += 1
        return handle

    def call_after(self, delay: float, fn: Callable[..., None], *args: Any) -> int:
        """Schedule ``fn(*args)`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        return self.call_at(self._now + delay, fn, *args)

    def schedule_batch(
        self,
        whens: list[float],
        fn: Callable[..., None],
        argses: list[tuple[Any, ...]],
    ) -> range:
        """Schedule ``fn(*argses[i])`` at ``whens[i]`` for a whole batch.

        One past-time check and one attribute walk for the batch; handle
        allocation matches ``call_at`` called in order, so tie-breaking
        between batch members and any other event is unchanged. Returns the
        contiguous handle range (usable with :meth:`cancel`).
        """
        if len(whens) != len(argses):
            raise SimulationError("schedule_batch lists must have equal lengths")
        if whens and min(whens) < self._now:
            raise SimulationError(
                f"cannot schedule event at t={min(whens)!r} before now={self._now!r}"
            )
        seq = self._seq
        queue = self._queue
        push = heapq.heappush
        for when, args in zip(whens, argses):
            push(queue, (when, seq, fn, args))
            seq += 1
        first = self._seq
        self._seq = seq
        return range(first, seq)

    def cancel(self, handle: int) -> None:
        """Cancel a pending event by the handle :meth:`call_at` returned.

        A cancelled event is discarded without executing and — unlike a
        no-op callback — without advancing the clock, so timeout guards
        (ack timers, watchdogs) don't inflate simulated time once their
        condition is met. Cancelling an already-executed handle is a
        tolerated no-op (ack paths race the timers they guard); its mark
        is reclaimed at the next quiescent point, so the cancelled set
        stays bounded by the *pending* cancellations of the current run
        rather than growing for the lifetime of the engine. Marks that
        reach the queue head are purged eagerly.
        """
        if not 0 <= handle < self._seq:
            raise SimulationError(f"unknown event handle: {handle!r}")
        self._cancelled.add(handle)
        queue = self._queue
        cancelled = self._cancelled
        while queue and queue[0][1] in cancelled:
            cancelled.discard(queue[0][1])
            heapq.heappop(queue)

    # -- running ----------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next live event. Returns False when the queue is empty."""
        while self._queue:
            when, seq, fn, args = heapq.heappop(self._queue)
            if seq in self._cancelled:
                self._cancelled.discard(seq)
                continue
            self._now = when
            self._events_executed += 1
            fn(*args)
            return True
        self._cancelled.clear()
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Drain the queue (optionally bounded by time or event count).

        Returns the simulated time after the run. With ``until`` set, events
        strictly after that time stay queued and the clock is advanced to
        exactly ``until`` (if the simulation reaches it).
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        try:
            executed = 0
            queue = self._queue
            cancelled = self._cancelled
            pop = heapq.heappop
            while queue:
                when = queue[0][0]
                if until is not None and when > until:
                    self._now = until
                    break
                if max_events is not None and executed >= max_events:
                    break
                # Fast path: simultaneous events (message bursts at a level
                # barrier) drain in one tight inner loop — the time-bound
                # check above holds for the whole batch, so it is not
                # re-evaluated per event.
                while queue and queue[0][0] == when:
                    if max_events is not None and executed >= max_events:
                        break
                    _, seq, fn, args = pop(queue)
                    if seq in cancelled:
                        cancelled.discard(seq)
                        continue
                    self._now = when
                    executed += 1
                    fn(*args)
            else:
                if until is not None:
                    self._now = max(self._now, until)
                # Quiescent: every scheduled event has either executed or
                # been popped, so surviving marks can only refer to handles
                # cancelled *after* they fired — reclaim them here.
                cancelled.clear()
        finally:
            self._running = False
            # Folded out of the hot loop; nothing inside a callback reads
            # the counter mid-run.
            self._events_executed += executed
            if self.telemetry is not None and executed:
                self.telemetry.metrics.counter("engine_events").add(executed)
        return self._now

    def run_until_quiescent(self, max_events: int = 100_000_000) -> float:
        """Drain every event; raise if the bound is hit (runaway simulation)."""
        start = self._events_executed
        self.run(max_events=max_events)
        if self._queue:
            raise SimulationError(
                f"simulation still active after {self._events_executed - start} events"
            )
        return self._now
