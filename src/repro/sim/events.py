"""Waitable events for process-style simulation code.

An :class:`Event` is a one-shot broadcast: processes that yield it are
resumed, in a deterministic order, when it succeeds. :class:`Timeout` is the
yield-value a process uses to sleep for a fixed amount of simulated time.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any, Protocol

from repro.errors import SimulationError


class EventLoop(Protocol):
    """The slice of the engine API waitables need: deferred callbacks.

    Both :class:`repro.sim.engine.Engine` and the partitioned PDES engine
    (:class:`repro.sim.partition.PartitionedEngine`) satisfy this, so
    process-style code is engine-agnostic.
    """

    def call_after(
        self, delay: float, fn: Callable[..., None], *args: Any
    ) -> int:
        """Schedule ``fn(*args)`` after ``delay`` simulated seconds."""
        ...


class Timeout:
    """Yielded by a process to suspend for ``delay`` simulated seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay!r}")
        self.delay = float(delay)

    def __repr__(self) -> str:
        return f"Timeout({self.delay!r})"


class Event:
    """A one-shot event that processes can wait on.

    ``succeed(value)`` fires the event, resuming every waiter with ``value``.
    Waiting on an already-fired event resumes immediately with the stored
    value (so there is no lost-wakeup race).
    """

    def __init__(self, engine: EventLoop) -> None:
        self._engine = engine
        self._fired = False
        self._value: Any = None
        self._callbacks: list[Callable[[Any], None]] = []

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        if not self._fired:
            raise SimulationError("event value read before the event fired")
        return self._value

    def succeed(self, value: Any = None) -> None:
        if self._fired:
            raise SimulationError("event fired twice")
        self._fired = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            # Resume waiters asynchronously so that succeed() never reenters
            # the caller's frame — this keeps process semantics simple.
            self._engine.call_after(0.0, cb, value)

    def add_callback(self, cb: Callable[[Any], None]) -> None:
        if self._fired:
            self._engine.call_after(0.0, cb, self._value)
        else:
            self._callbacks.append(cb)
