"""A small deterministic discrete-event simulation (DES) engine.

The engine drives both the machine model (DMA transfers, mesh shuffles,
module executions on CPE clusters) and the network model (message flights
over fat-tree links). Two programming styles are supported:

- **callback style** (used by the BFS runtime): schedule ``engine.call_at`` /
  ``engine.call_after`` callbacks; service times are computed up front and
  resources track their next-free times (:class:`~repro.sim.resources.Server`
  and :class:`~repro.sim.resources.ServerPool`).
- **process style** (used in tests and small models): Python generators that
  ``yield`` :class:`~repro.sim.process.Timeout` or events.

Determinism: ties in the event queue break on a monotone sequence number, so
two runs with the same seeds produce identical traces.
"""

from repro.sim.engine import Engine
from repro.sim.events import Event, EventLoop, Timeout
from repro.sim.partition import (
    LookaheadTable,
    PartitionChannel,
    PartitionLayout,
    PartitionedEngine,
)
from repro.sim.process import Process
from repro.sim.resources import Server, ServerPool
from repro.sim.stats import Counter, TimeSeries, StatsRegistry

__all__ = [
    "Engine",
    "EventLoop",
    "LookaheadTable",
    "PartitionChannel",
    "PartitionLayout",
    "PartitionedEngine",
    "Event",
    "Timeout",
    "Process",
    "Server",
    "ServerPool",
    "Counter",
    "TimeSeries",
    "StatsRegistry",
]
