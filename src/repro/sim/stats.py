"""Lightweight statistics collection for simulations.

Simulations register named counters and time series under a
:class:`StatsRegistry`; benchmark harnesses read them to report message
counts, byte volumes, per-level timings and so on.

The registry is now a thin specialisation of
:class:`repro.telemetry.metrics.MetricsRegistry` — the unified observability
layer — so every simulation stats object also supports labeled counters,
gauges and histograms (``stats.counter("messages_by_tag", tag="fwd")``)
with unchanged unlabeled behaviour and snapshot format.
"""

from __future__ import annotations

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
)

__all__ = ["Counter", "Gauge", "Histogram", "TimeSeries", "StatsRegistry"]


class StatsRegistry(MetricsRegistry):
    """Named counters and series with create-on-first-use semantics.

    Adds the simulation-side :class:`TimeSeries` store to the base metrics
    registry; series are kept out of ``snapshot()`` (they are sequences,
    not scalars).
    """

    def __init__(self) -> None:
        super().__init__()
        self.series: dict[str, TimeSeries] = {}

    def timeseries(self, name: str) -> TimeSeries:
        if name not in self.series:
            self.series[name] = TimeSeries(name)
        return self.series[name]

    def merge_counters(self, other: MetricsRegistry) -> None:
        """Fold ``other``'s counters into this registry, labels preserved.

        Used when per-partition or per-worker accounting is folded into a
        single snapshot (bench aggregation, telemetry adoption). Counters
        are the only kind that merges by addition; gauges and histograms
        are point-in-time readings and are deliberately left alone.
        Families and children are visited in sorted order so the merge is
        deterministic regardless of registration order.
        """
        for name in sorted(other._families):
            family = other._families[name]
            if family.kind != "counter":
                continue
            for values in sorted(family.children):
                child = family.children[values]
                if child.value:
                    labels = dict(zip(family.label_keys, values))
                    self.counter(name, **labels).add(child.value)
