"""Lightweight statistics collection for simulations.

Simulations register named counters and time series under a
:class:`StatsRegistry`; benchmark harnesses read them to report message
counts, byte volumes, per-level timings and so on.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Counter:
    """A monotone counter (events, bytes, messages...)."""

    name: str
    value: float = 0.0

    def add(self, amount: float = 1.0) -> None:
        self.value += amount


@dataclass
class TimeSeries:
    """A sequence of (time, value) observations."""

    name: str
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def observe(self, time: float, value: float) -> None:
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def total(self) -> float:
        return sum(self.values)

    def mean(self) -> float:
        return self.total() / len(self.values) if self.values else 0.0

    def max(self) -> float:
        return max(self.values) if self.values else 0.0


class StatsRegistry:
    """Named counters and series with create-on-first-use semantics."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.series: dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def timeseries(self, name: str) -> TimeSeries:
        if name not in self.series:
            self.series[name] = TimeSeries(name)
        return self.series[name]

    def value(self, name: str) -> float:
        """Read a counter's value (0.0 if it was never touched)."""
        c = self.counters.get(name)
        return c.value if c else 0.0

    def snapshot(self) -> dict[str, float]:
        return {name: c.value for name, c in sorted(self.counters.items())}
