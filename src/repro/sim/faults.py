"""Deterministic fault injection for SimMPI messages and nodes.

Wraps a cluster's ``send`` with a fault plan that can drop, duplicate,
delay, reorder or corrupt selected messages, and (separately) crash or
slow down whole nodes. Used to demonstrate properties of the BFS runtime
the paper's design implies but never states:

- **duplicate tolerance** — handlers are idempotent (the ``Prt(v) = -1``
  guard), so duplicated deliveries cannot corrupt a traversal;
- **loss is caught** — a dropped record message produces a parent map that
  fails Graph500 validation (there is no silent wrong answer);
- **loss is survivable** — layered under
  :class:`repro.resilience.channel.ReliableChannel`, dropped or corrupted
  messages are retransmitted and the traversal still validates.

Two selection styles exist: by message ordinal (:class:`FaultPlan`, exact
replay of a scripted scenario) and by seeded probability
(:class:`RandomFaultPlan`, via :func:`repro.sim.rng.substream`, so rate-based
experiments replay exactly too). Node-level faults (:class:`NodeFaultPlan`)
model fail-stop crashes at a simulated time and stragglers whose traffic is
slowed by a factor.

Layering: install fault injectors directly on the cluster (they wrap
``cluster.send``), and install the reliable channel *after* them — faults
then happen "on the wire", below the ack/retransmit protocol, so every
retransmission is independently at risk.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ConfigError
from repro.network.simmpi import Message, SimCluster
from repro.sim.rng import substream


def dropped_message(
    src: int, dst: int, tag: str, nbytes: int, payload: Any, send_time: float
) -> Message:
    """Sentinel for a message the fault layer swallowed.

    ``arrival_time`` is ``+inf`` — "never delivered" — so callers that read
    ``.arrival_time`` off the returned message see a well-typed value
    instead of crashing on ``None``.
    """
    return Message(src, dst, tag, nbytes, payload, send_time, math.inf)


def corrupt_payload(payload: Any, rng: np.random.Generator) -> tuple[Any, bool]:
    """Return a corrupted copy of ``payload`` and whether anything changed.

    Corruption swaps two entries of the first array in a record payload —
    a bit-flip model that stays *closed under ownership*: the records still
    route to valid handlers (no simulated segfaults), but the (u, v)
    pairing is wrong, which checksums detect and Graph500 validation
    catches. Payloads that cannot be corrupted safely (markers, scalars,
    single-record messages) are returned unchanged.
    """
    if dataclasses.is_dataclass(payload) and hasattr(payload, "payload"):
        # A reliable-transport envelope: corrupt the inner payload but keep
        # the frame (seq + checksum) intact, so the receiver can detect it.
        inner, changed = corrupt_payload(payload.payload, rng)
        if not changed:
            return payload, False
        return dataclasses.replace(payload, payload=inner), True
    if isinstance(payload, tuple) and payload and isinstance(payload[0], np.ndarray):
        u = payload[0]
        if len(u) >= 2:
            i, j = (int(x) for x in rng.choice(len(u), size=2, replace=False))
            if u[i] == u[j]:
                return payload, False
            u = u.copy()
            u[i], u[j] = u[j], u[i]
            return (u, *payload[1:]), True
    return payload, False


class SendInterceptor:
    """Base class for anything that wraps a cluster's ``send`` path.

    Subclasses implement ``_send`` with the same signature as
    :meth:`repro.network.simmpi.SimCluster.send`. Installation happens at
    construction; ``uninstall`` is idempotent and the instance doubles as a
    context manager (uninstalls on exit).
    """

    def __init__(self, cluster: SimCluster) -> None:
        self.cluster = cluster
        self._original_send = cluster.send
        cluster.send = self._send  # type: ignore[method-assign]

    def uninstall(self) -> None:
        if self._original_send is not None:
            self.cluster.send = self._original_send  # type: ignore[method-assign]
            self._original_send = None

    @property
    def installed(self) -> bool:
        return self._original_send is not None

    def __enter__(self) -> "SendInterceptor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.uninstall()

    def _send(self, src: int, dst: int, tag: str, nbytes: int, payload: Any = None, at_time: float | None = None) -> Message:
        raise NotImplementedError  # pragma: no cover


@dataclass
class FaultPlan:
    """Which message ordinals (per matching tag) get which fault."""

    drop: set[int] = field(default_factory=set)
    duplicate: set[int] = field(default_factory=set)
    delay: dict[int, float] = field(default_factory=dict)
    #: Only messages whose tag starts with this prefix count and are
    #: eligible ("" = everything). Termination markers are usually excluded
    #: by filtering on data tags.
    tag_prefix: str = ""

    def __post_init__(self) -> None:
        if any(d < 0 for d in self.delay.values()):
            raise ConfigError("delays must be non-negative")


class FaultInjector(SendInterceptor):
    """Installs an ordinal-based fault plan onto a cluster's send path."""

    def __init__(self, cluster: SimCluster, plan: FaultPlan) -> None:
        self.plan = plan
        self.matched = 0
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0
        super().__init__(cluster)

    def _send(self, src: int, dst: int, tag: str, nbytes: int, payload: Any = None, at_time: float | None = None) -> Message:
        if not tag.startswith(self.plan.tag_prefix):
            return self._original_send(src, dst, tag, nbytes, payload, at_time)
        ordinal = self.matched
        self.matched += 1
        if ordinal in self.plan.drop:
            self.dropped += 1
            base = at_time if at_time is not None else self.cluster.engine.now
            return dropped_message(src, dst, tag, nbytes, payload, base)
        if ordinal in self.plan.delay:
            self.delayed += 1
            base = at_time if at_time is not None else self.cluster.engine.now
            at_time = base + self.plan.delay[ordinal]
        msg = self._original_send(src, dst, tag, nbytes, payload, at_time)
        if ordinal in self.plan.duplicate:
            self.duplicated += 1
            self._original_send(src, dst, tag, nbytes, payload, at_time)
        return msg


@dataclass
class RandomFaultPlan:
    """Seeded per-message fault probabilities (replayable noise).

    Each matching message independently draws whether it is dropped,
    duplicated, delayed by ``delay_seconds``, reordered (delayed by a
    uniform slice of ``reorder_window``, which shuffles it past later
    traffic) or payload-corrupted. All draws come from one
    :func:`~repro.sim.rng.substream` of ``seed``, so the same seed over the
    same workload replays the exact same fault sequence.
    """

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    delay_seconds: float = 1e-5
    reorder_rate: float = 0.0
    reorder_window: float = 1e-5
    corrupt_rate: float = 0.0
    tag_prefix: str = ""
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "duplicate_rate", "delay_rate",
                     "reorder_rate", "corrupt_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {rate}")
        if self.delay_seconds < 0 or self.reorder_window < 0:
            raise ConfigError("fault delays must be non-negative")

    @property
    def any_faults(self) -> bool:
        return any(
            getattr(self, name) > 0
            for name in ("drop_rate", "duplicate_rate", "delay_rate",
                         "reorder_rate", "corrupt_rate")
        )


class RandomFaultInjector(SendInterceptor):
    """Installs seeded probabilistic faults onto a cluster's send path.

    Per-fault tallies are kept on the instance *and* pushed into the
    cluster's :class:`~repro.sim.stats.StatsRegistry` (``fault_drops``,
    ``fault_duplicates``, ``fault_delays``, ``fault_reorders``,
    ``fault_corruptions``) so reports can surface them.
    """

    def __init__(self, cluster: SimCluster, plan: RandomFaultPlan) -> None:
        self.plan = plan
        self.rng = substream(plan.seed, "faults", "network")
        self.matched = 0
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0
        self.reordered = 0
        self.corrupted = 0
        super().__init__(cluster)

    def _send(self, src: int, dst: int, tag: str, nbytes: int, payload: Any = None, at_time: float | None = None) -> Message:
        if not tag.startswith(self.plan.tag_prefix):
            return self._original_send(src, dst, tag, nbytes, payload, at_time)
        self.matched += 1
        plan, stats = self.plan, self.cluster.stats
        # One fixed-width block of draws per message keeps the stream
        # aligned no matter which fault classes are enabled.
        u = self.rng.random(6)
        if u[0] < plan.drop_rate:
            self.dropped += 1
            stats.counter("fault_drops").add()
            base = at_time if at_time is not None else self.cluster.engine.now
            return dropped_message(src, dst, tag, nbytes, payload, base)
        if u[1] < plan.delay_rate:
            self.delayed += 1
            stats.counter("fault_delays").add()
            base = at_time if at_time is not None else self.cluster.engine.now
            at_time = base + plan.delay_seconds
        if u[2] < plan.reorder_rate:
            self.reordered += 1
            stats.counter("fault_reorders").add()
            base = at_time if at_time is not None else self.cluster.engine.now
            at_time = base + float(u[3]) * plan.reorder_window
        if u[4] < plan.corrupt_rate:
            payload, changed = corrupt_payload(payload, self.rng)
            if changed:
                self.corrupted += 1
                stats.counter("fault_corruptions").add()
        msg = self._original_send(src, dst, tag, nbytes, payload, at_time)
        if u[5] < plan.duplicate_rate:
            self.duplicated += 1
            stats.counter("fault_duplicates").add()
            self._original_send(src, dst, tag, nbytes, payload, at_time)
        return msg


@dataclass
class NodeFaultPlan:
    """Node-level faults: fail-stop crashes and stragglers.

    ``crash_at`` maps rank -> absolute simulated time of a fail-stop crash
    (the rank is :meth:`~repro.network.simmpi.SimCluster.deregister`-ed; its
    traffic becomes dead letters). ``stragglers`` maps rank -> slowdown
    factor >= 1 applied to every message that rank sends or receives,
    modelling a degraded NIC/MPE.
    """

    crash_at: dict[int, float] = field(default_factory=dict)
    stragglers: dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if any(t < 0 for t in self.crash_at.values()):
            raise ConfigError("crash times must be non-negative")
        if any(f < 1.0 for f in self.stragglers.values()):
            raise ConfigError("straggler slowdown factors must be >= 1")


class NodeFaultInjector(SendInterceptor):
    """Schedules node crashes on the engine and slows straggler traffic."""

    def __init__(self, cluster: SimCluster, plan: NodeFaultPlan) -> None:
        self.plan = plan
        self.crashed: list[int] = []
        self.straggled = 0
        engine = cluster.engine
        for rank in sorted(plan.crash_at):
            cluster.topology.check_node(rank)
            when = max(plan.crash_at[rank], engine.now)
            engine.call_at(when, self._crash, cluster, rank)
        for rank in plan.stragglers:
            cluster.topology.check_node(rank)
        if plan.stragglers:
            super().__init__(cluster)
        else:
            # Crash-only plans leave ``send`` untouched: crashes are engine
            # events, not send-path perturbations. Wrapping ``send`` would
            # silently degrade ``send_batch`` to the scalar path for the
            # whole run, so the batched dead-letter handling would never be
            # exercised under crashes (its scalar parity is pinned by
            # tests/test_message_path_parity.py).
            self.cluster = cluster
            self._original_send = None

    def _crash(self, cluster: SimCluster, rank: int) -> None:
        if cluster.is_alive(rank):
            cluster.deregister(rank)
            cluster.stats.counter("node_crashes").add()
            self.crashed.append(rank)

    def _straggle_seconds(self, src: int, dst: int, nbytes: int) -> float:
        t = self.cluster.spec.taihulight
        extra = 0.0
        for rank in (src, dst):
            factor = self.plan.stragglers.get(rank)
            if factor is not None:
                extra += (factor - 1.0) * (
                    nbytes / t.nic_effective_bandwidth + t.message_overhead
                )
        return extra

    def _send(self, src: int, dst: int, tag: str, nbytes: int, payload: Any = None, at_time: float | None = None) -> Message:
        if self.plan.stragglers:
            extra = self._straggle_seconds(src, dst, nbytes)
            if extra > 0.0:
                self.straggled += 1
                base = at_time if at_time is not None else self.cluster.engine.now
                at_time = base + extra
        return self._original_send(src, dst, tag, nbytes, payload, at_time)


@dataclass
class DiskFaultPlan:
    """Checkpoint-disk faults: shard loss, latent corruption, slow disks.

    ``lose_at`` maps rank -> absolute simulated time its checkpoint disk
    dies (every shard it holds is gone; the node itself keeps running).
    ``corrupt_at`` maps rank -> time one resident shard gets a byte
    flipped (which the per-shard CRC detects at the next scrub or
    restore). ``degrade`` maps rank -> I/O slowdown factor >= 1 applied
    to every checkpoint/scrub/recovery pass — the fat sibling of the
    network straggler, after kelp's ``check_for_failing_disk`` model.
    """

    lose_at: dict[int, float] = field(default_factory=dict)
    corrupt_at: dict[int, float] = field(default_factory=dict)
    degrade: dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if any(t < 0 for t in self.lose_at.values()):
            raise ConfigError("disk loss times must be non-negative")
        if any(t < 0 for t in self.corrupt_at.values()):
            raise ConfigError("disk corruption times must be non-negative")
        if any(f < 1.0 for f in self.degrade.values()):
            raise ConfigError("disk slowdown factors must be >= 1")

    @property
    def any_faults(self) -> bool:
        return bool(self.lose_at or self.corrupt_at or self.degrade)


class DiskFaultInjector:
    """Schedules disk faults against a BFS kernel's checkpoint store.

    Unlike the send-path injectors this wraps nothing: losses and
    corruptions are engine events that mutate whatever checkpoint store
    the kernel holds when they fire (buddy stores lose their single copy;
    sharded stores lose/corrupt individual shards), and ``degrade``
    factors land in the kernel's ``disk_slowdowns`` map, which its cost
    model reads. ``kernel`` is duck-typed: it needs ``cluster``,
    ``checkpoints`` and ``disk_slowdowns`` attributes (the
    :class:`repro.core.bfs.DistributedBFS` surface).
    """

    def __init__(self, kernel: Any, plan: DiskFaultPlan, seed: int = 0) -> None:
        self.kernel = kernel
        self.plan = plan
        self.rng = substream(seed, "faults", "disk")
        self.disks_lost = 0
        self.shards_dropped = 0
        self.corrupted = 0
        cluster: SimCluster = kernel.cluster
        engine = cluster.engine
        for rank in sorted(plan.lose_at):
            cluster.topology.check_node(rank)
            engine.call_at(max(plan.lose_at[rank], engine.now), self._lose, rank)
        for rank in sorted(plan.corrupt_at):
            cluster.topology.check_node(rank)
            engine.call_at(
                max(plan.corrupt_at[rank], engine.now), self._corrupt, rank
            )
        for rank in sorted(plan.degrade):
            cluster.topology.check_node(rank)
        kernel.disk_slowdowns.update(plan.degrade)

    def _lose(self, rank: int) -> None:
        store = self.kernel.checkpoints
        if store is None:
            return
        self.disks_lost += 1
        self.kernel.cluster.stats.counter("disk_losses").add()
        dropped = store.drop_holder(rank)
        if dropped:
            self.shards_dropped += dropped

    def _corrupt(self, rank: int) -> None:
        store = self.kernel.checkpoints
        if store is None:
            return
        if store.corrupt_shard(rank, self.rng):
            self.corrupted += 1
            self.kernel.cluster.stats.counter("disk_corruptions").add()
