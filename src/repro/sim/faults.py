"""Deterministic fault injection for SimMPI messages.

Wraps a cluster's ``send`` with a fault plan that can drop, duplicate, or
delay selected messages. Used to demonstrate two properties of the BFS
runtime the paper's design implies but never states:

- **duplicate tolerance** — handlers are idempotent (the ``Prt(v) = -1``
  guard), so duplicated deliveries cannot corrupt a traversal;
- **loss is caught** — a dropped record message produces a parent map that
  fails Graph500 validation (there is no silent wrong answer).

Fault selection is by message ordinal (deterministic), optionally filtered
by tag, so experiments replay exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.network.simmpi import SimCluster


@dataclass
class FaultPlan:
    """Which message ordinals (per matching tag) get which fault."""

    drop: set[int] = field(default_factory=set)
    duplicate: set[int] = field(default_factory=set)
    delay: dict[int, float] = field(default_factory=dict)
    #: Only messages whose tag starts with this prefix count and are
    #: eligible ("" = everything). Termination markers are usually excluded
    #: by filtering on data tags.
    tag_prefix: str = ""

    def __post_init__(self) -> None:
        if any(d < 0 for d in self.delay.values()):
            raise ConfigError("delays must be non-negative")


class FaultInjector:
    """Installs a fault plan onto a cluster's send path."""

    def __init__(self, cluster: SimCluster, plan: FaultPlan):
        self.cluster = cluster
        self.plan = plan
        self.matched = 0
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0
        self._original_send = cluster.send
        cluster.send = self._send  # type: ignore[method-assign]

    def uninstall(self) -> None:
        self.cluster.send = self._original_send  # type: ignore[method-assign]

    def _send(self, src, dst, tag, nbytes, payload=None, at_time=None):
        if not tag.startswith(self.plan.tag_prefix):
            return self._original_send(src, dst, tag, nbytes, payload, at_time)
        ordinal = self.matched
        self.matched += 1
        if ordinal in self.plan.drop:
            self.dropped += 1
            return None
        if ordinal in self.plan.delay:
            self.delayed += 1
            base = at_time if at_time is not None else self.cluster.engine.now
            at_time = base + self.plan.delay[ordinal]
        msg = self._original_send(src, dst, tag, nbytes, payload, at_time)
        if ordinal in self.plan.duplicate:
            self.duplicated += 1
            self._original_send(src, dst, tag, nbytes, payload, at_time)
        return msg
