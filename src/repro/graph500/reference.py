"""Sequential reference BFS.

A straightforward level-synchronous CSR BFS used as ground truth: the
distributed kernels' parent maps are validated structurally against the
Graph500 rules *and* their implied depths are compared against this
reference (any valid BFS tree has exactly these depths, even though parent
choices may differ).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.graph.csr import CSRGraph


def reference_bfs(graph: CSRGraph, root: int) -> np.ndarray:
    """Parent array: parent[root] = root, -1 for unreached vertices."""
    if not 0 <= root < graph.num_vertices:
        raise ConfigError(f"root {root} out of range")
    parent = np.full(graph.num_vertices, -1, dtype=np.int64)
    parent[root] = root
    frontier = np.array([root], dtype=np.int64)
    while len(frontier):
        sources, targets = graph.expand(frontier)
        fresh = parent[targets] == -1
        sources, targets = sources[fresh], targets[fresh]
        if len(targets) == 0:
            break
        # First writer wins within a level: np.unique keeps the first
        # occurrence index per target, making the result deterministic.
        uniq_targets, first_idx = np.unique(targets, return_index=True)
        parent[uniq_targets] = sources[first_idx]
        frontier = uniq_targets
    return parent


def reference_depths(graph: CSRGraph, root: int) -> np.ndarray:
    """Depth array: 0 at the root, -1 for unreached vertices."""
    if not 0 <= root < graph.num_vertices:
        raise ConfigError(f"root {root} out of range")
    depth = np.full(graph.num_vertices, -1, dtype=np.int64)
    depth[root] = 0
    frontier = np.array([root], dtype=np.int64)
    level = 0
    while len(frontier):
        level += 1
        _, targets = graph.expand(frontier)
        targets = targets[depth[targets] == -1]
        if len(targets) == 0:
            break
        frontier = np.unique(targets)
        depth[frontier] = level
    return depth


def depths_from_parents(parent: np.ndarray, root: int) -> np.ndarray:
    """Depths implied by a parent map (-1 where unreached).

    Walks the tree by repeated parent-pointer relaxation; raises if the map
    is not a tree rooted at ``root`` (a cycle never converges and is caught
    by the iteration bound).
    """
    parent = np.asarray(parent, dtype=np.int64)
    n = len(parent)
    depth = np.full(n, -1, dtype=np.int64)
    if not 0 <= root < n or parent[root] != root:
        raise ConfigError("parent map is not rooted at the requested root")
    depth[root] = 0
    frontier_mask = np.zeros(n, dtype=bool)
    frontier_mask[root] = True
    reached = parent >= 0
    for level in range(1, n + 1):
        # Vertices whose parent is in the current frontier get this depth.
        candidates = reached & (depth == -1)
        idx = np.flatnonzero(candidates)
        if len(idx) == 0:
            return depth
        hit = frontier_mask[parent[idx]]
        nxt = idx[hit]
        if len(nxt) == 0:
            raise ConfigError("parent map contains unreachable or cyclic chains")
        depth[nxt] = level
        frontier_mask = np.zeros(n, dtype=bool)
        frontier_mask[nxt] = True
    return depth
