"""Sequential reference BFS.

A straightforward level-synchronous CSR BFS used as ground truth: the
distributed kernels' parent maps are validated structurally against the
Graph500 rules *and* their implied depths are compared against this
reference (any valid BFS tree has exactly these depths, even though parent
choices may differ).

All three routines here sit on the harness's validation hot path (once per
search root), so they are written frontier-proportional: boolean-mask
dedup instead of per-level sorts, and tree-edge gathers instead of
whole-vertex-set rescans. Their results are bit-identical to the original
sort-based implementations (first-writer-wins parent choice included).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.graph.csr import CSRGraph


def reference_bfs(graph: CSRGraph, root: int) -> np.ndarray:
    """Parent array: parent[root] = root, -1 for unreached vertices."""
    if not 0 <= root < graph.num_vertices:
        raise ConfigError(f"root {root} out of range")
    n = graph.num_vertices
    parent = np.full(n, -1, dtype=np.int64)
    parent[root] = root
    visited = np.zeros(n, dtype=bool)
    visited[root] = True
    frontier = np.array([root], dtype=np.int64)
    while len(frontier):
        sources, targets = graph.expand(frontier)
        fresh = ~visited[targets]
        sources, targets = sources[fresh], targets[fresh]
        if len(targets) == 0:
            break
        # First writer wins within a level: scatter in reverse order so the
        # earliest occurrence of each target lands last — deterministic and
        # identical to the historical np.unique(return_index=True) choice.
        parent[targets[::-1]] = sources[::-1]
        visited[targets] = True
        next_mask = np.zeros(n, dtype=bool)
        next_mask[targets] = True
        frontier = np.flatnonzero(next_mask)
    return parent


def reference_depths(graph: CSRGraph, root: int) -> np.ndarray:
    """Depth array: 0 at the root, -1 for unreached vertices."""
    if not 0 <= root < graph.num_vertices:
        raise ConfigError(f"root {root} out of range")
    n = graph.num_vertices
    depth = np.full(n, -1, dtype=np.int64)
    depth[root] = 0
    visited = np.zeros(n, dtype=bool)
    visited[root] = True
    frontier = np.array([root], dtype=np.int64)
    level = 0
    while len(frontier):
        level += 1
        _, targets = graph.expand(frontier)
        targets = targets[~visited[targets]]
        if len(targets) == 0:
            break
        # Bitmap dedup: scatter into a mask and read the set bits back out
        # (ascending, like the sort it replaces, without the O(m log m)).
        next_mask = np.zeros(n, dtype=bool)
        next_mask[targets] = True
        frontier = np.flatnonzero(next_mask)
        visited[frontier] = True
        depth[frontier] = level
    return depth


def depths_from_parents(parent: np.ndarray, root: int) -> np.ndarray:
    """Depths implied by a parent map (-1 where unreached).

    Builds the tree's child adjacency once (a stable counting sort by
    parent) and breadth-first walks it from the root, so each vertex is
    touched O(1) times instead of rescanned every level. Raises if the map
    is not a tree rooted at ``root`` (vertices on parent cycles, or chains
    that never reach the root, are exactly the ones the walk never visits).
    """
    parent = np.asarray(parent, dtype=np.int64)
    n = len(parent)
    if not 0 <= root < n or parent[root] != root:
        raise ConfigError("parent map is not rooted at the requested root")
    depth = np.full(n, -1, dtype=np.int64)
    depth[root] = 0
    ids = np.arange(n, dtype=np.int64)
    children = np.flatnonzero((parent >= 0) & (ids != root))
    if len(children) == 0:
        return depth
    if int(parent[children].max()) >= n:
        raise ConfigError("parent id out of range")
    # Tree CSR: row u holds the vertices claiming u as parent.
    order = np.argsort(parent[children], kind="stable")
    child_sorted = children[order]
    counts = np.bincount(parent[children], minlength=n)
    row_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=row_ptr[1:])
    frontier = np.array([root], dtype=np.int64)
    level = 0
    while len(frontier):
        level += 1
        starts = row_ptr[frontier]
        lengths = row_ptr[frontier + 1] - starts
        total = int(lengths.sum())
        if total == 0:
            break
        seg_base = np.repeat(
            starts - np.concatenate(([0], np.cumsum(lengths)[:-1])), lengths
        )
        frontier = child_sorted[np.arange(total, dtype=np.int64) + seg_base]
        depth[frontier] = level
    if np.any(depth[children] < 0):
        raise ConfigError("parent map contains unreachable or cyclic chains")
    return depth
