"""Search-root sampling.

The spec requires 64 distinct roots sampled uniformly from vertices that
have at least one edge (self loops excluded — a root whose only edge is a
self loop would traverse nothing). We sample deterministically from the
experiment's master seed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.graph.edgelist import EdgeList
from repro.sim.rng import substream


def nontrivial_vertices(edges: EdgeList) -> np.ndarray:
    """Vertices with at least one non-loop edge."""
    no_loops = edges.without_self_loops()
    mask = np.zeros(edges.num_vertices, dtype=bool)
    mask[no_loops.src] = True
    mask[no_loops.dst] = True
    return np.flatnonzero(mask).astype(np.int64)


def sample_roots(edges: EdgeList, num_roots: int, seed: int = 1) -> np.ndarray:
    """Distinct non-trivial roots (fewer if the graph can't supply enough)."""
    if num_roots < 1:
        raise ConfigError(f"need at least one root, got {num_roots}")
    candidates = nontrivial_vertices(edges)
    if len(candidates) == 0:
        raise ConfigError("graph has no non-trivial vertices to root a BFS at")
    rng = substream(seed, "roots", num_roots)
    k = min(num_roots, len(candidates))
    return np.sort(rng.choice(candidates, size=k, replace=False))
