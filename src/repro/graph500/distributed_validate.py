"""Distributed BFS validation (benchmark step 5, at scale).

Section 5: "we also ... optimize the BFS verification algorithm to scale
the entire benchmark to 10.6 million cores." The sequential validator
(:mod:`repro.graph500.validate`) re-runs a reference BFS — fine for ground
truth, impossible at machine scale. This validator checks the same rules
*distributively* on the superstep engine, with no reference traversal:

1. depths are resolved by iterative parent-depth queries (owner of the
   parent answers when its own depth is known) — a tree of height L
   resolves in L supersteps, and any cycle or dangling chain simply never
   resolves, which is the rule-1 violation;
2. claimed tree edges are checked against the owner's adjacency rows;
3. with depths replicated (one allgather, priced like the hub bitmaps),
   every input edge is checked to span at most one level and never straddle
   the reached/unreached boundary — which together with (1) and (2) pins
   the depths to exact BFS distances.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError, ValidationError
from repro.graph.edgelist import EdgeList


@dataclass
class DistributedValidationResult:
    depth: np.ndarray
    sim_seconds: float
    supersteps: int


class DistributedValidator:
    """Validate parent maps for graphs distributed over ``nodes`` ranks."""

    def __init__(self, edges: EdgeList, nodes: int, **engine_kwargs):
        # Late import: repro.algorithms.base pulls in repro.core, whose
        # package init reaches back into repro.graph500 — importing here
        # keeps the package graph acyclic at module-load time.
        from repro.algorithms.base import SuperstepEngine

        self.engine = SuperstepEngine(edges, nodes, **engine_kwargs)
        self.edges = edges

    def validate(
        self, root: int, parent: np.ndarray, max_rounds: int = 100_000
    ) -> DistributedValidationResult:
        eng = self.engine
        n = eng.graph.num_vertices
        parent = np.asarray(parent, dtype=np.int64)
        if parent.shape != (n,):
            raise ConfigError(f"parent map must have shape ({n},)")
        if not 0 <= root < n:
            raise ConfigError(f"root {root} out of range")
        if parent[root] != root:
            raise ValidationError("rule 1: the root is not its own parent")
        if ((parent < -1) | (parent >= n)).any():
            raise ValidationError("rule 1: parent id out of range")

        # Rule 5 first (purely local): claimed tree edges must exist.
        for part in eng.parts:
            mine = np.arange(part.lo, part.hi, dtype=np.int64)
            p_local = parent[mine]
            children = mine[(p_local >= 0) & (mine != root)]
            if len(children) == 0:
                continue
            srcs, tgts = part.graph.expand(children - part.lo)
            keys = (srcs + part.lo) * np.int64(n) + tgts
            want = children * np.int64(n) + parent[children]
            ok = np.isin(want, keys)
            if not ok.all():
                bad = int(children[np.flatnonzero(~ok)[0]])
                raise ValidationError(
                    f"rule 5: claimed tree edge {parent[bad]} -> {bad} "
                    "is not a graph edge"
                )

        # Depth resolution by repeated parent queries.
        depth = [np.full(p.n_local, -1, dtype=np.int64) for p in eng.parts]
        root_owner = int(eng.owner[root])
        depth[root_owner][root - eng.parts[root_owner].lo] = 0
        t_start = eng.sim_seconds
        rounds = 0
        resolved_now = True
        while rounds < max_rounds:
            rounds += 1
            outgoing = []
            pending_any = False
            for part, d in zip(eng.parts, depth):
                mine = np.arange(part.lo, part.hi, dtype=np.int64)
                unresolved = mine[(parent[mine] >= 0) & (d < 0)]
                if len(unresolved) == 0:
                    outgoing.append((np.empty(0, np.int64), np.empty(0)))
                    continue
                pending_any = True
                # Ask the owner of each parent for its depth; encode the
                # child id as the value so the answer can come straight
                # back as (child, depth).
                outgoing.append((parent[unresolved], unresolved.astype(np.float64)))
            if not pending_any:
                rounds -= 1
                break
            inboxes = eng.superstep(outgoing)
            # Owners answer queries whose target depth is known.
            answers = []
            for part, d, (q_parent, q_child) in zip(eng.parts, depth, inboxes):
                if len(q_parent) == 0:
                    answers.append((np.empty(0, np.int64), np.empty(0)))
                    continue
                pd = d[q_parent - part.lo]
                known = pd >= 0
                answers.append(
                    (q_child[known].astype(np.int64), (pd[known] + 1).astype(np.float64))
                )
            inboxes = eng.superstep(answers)
            resolved_now = False
            for part, d, (child, child_depth) in zip(eng.parts, depth, inboxes):
                if len(child) == 0:
                    continue
                d[child - part.lo] = child_depth.astype(np.int64)
                resolved_now = True
            if not resolved_now:
                # No progress while queries remain: a cycle or a chain
                # detached from the root.
                raise ValidationError(
                    "rule 1: parent chains contain a cycle or dangling branch"
                )
        else:
            raise ValidationError(f"depth resolution exceeded {max_rounds} rounds")

        full_depth = np.full(n, -1, dtype=np.int64)
        for part, d in zip(eng.parts, depth):
            full_depth[part.lo : part.hi] = d

        # Replicate depths (allgather, priced) and run the edge rules.
        t_allgather = self._allgather_cost(n)
        eng._mark(eng.sim_seconds + t_allgather)

        e = self.edges.without_self_loops()
        du, dv = full_depth[e.src], full_depth[e.dst]
        if np.any((du >= 0) != (dv >= 0)):
            bad = int(np.flatnonzero((du >= 0) != (dv >= 0))[0])
            raise ValidationError(
                f"rule 4: edge ({e.src[bad]}, {e.dst[bad]}) straddles the "
                "reached/unreached boundary"
            )
        both = (du >= 0) & (dv >= 0)
        if both.any() and np.abs(du[both] - dv[both]).max() > 1:
            raise ValidationError("rule 3: an edge spans more than one level")
        # Reached set must agree with the parent map.
        if not np.array_equal(full_depth >= 0, parent >= 0):
            raise ValidationError("rule 1: reached sets disagree with depths")

        return DistributedValidationResult(
            depth=full_depth,
            sim_seconds=eng.sim_seconds - t_start,
            supersteps=rounds,
        )

    def _allgather_cost(self, n: int) -> float:
        t = self.engine.spec.taihulight
        per_node = n // self.engine.num_nodes * 8
        if self.engine.num_nodes == 1:
            return 0.0
        rounds = int(np.ceil(np.log2(self.engine.num_nodes)))
        return (
            rounds * (t.inter_super_node_latency + t.message_overhead)
            + per_node * self.engine.num_nodes / t.nic_effective_bandwidth
        )
