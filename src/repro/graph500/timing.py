"""TEPS accounting (benchmark step 6).

For each root, the traversed-edge count is the number of *input edge
tuples* whose endpoints both lie in the traversed component — multiplicity
and self-loops included, per the spec. The headline statistic over the 64
roots is the **harmonic mean** of per-root TEPS (equivalently: total edges
over total... no — the spec's estimator), with the harmonic standard error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.graph.edgelist import EdgeList


def traversed_edges(edges: EdgeList, depth: np.ndarray) -> int:
    """Input tuples inside the traversed component (the TEPS numerator)."""
    depth = np.asarray(depth)
    if depth.shape != (edges.num_vertices,):
        raise ConfigError("depth array must have one entry per vertex")
    return edges.edges_within(depth >= 0)


@dataclass(frozen=True)
class TepsStatistics:
    """Spec-style summary over per-root (edges, seconds) samples."""

    teps: np.ndarray  # per-root traversed edges per second

    @classmethod
    def from_runs(cls, edges_per_run, seconds_per_run) -> "TepsStatistics":
        e = np.asarray(edges_per_run, dtype=np.float64)
        t = np.asarray(seconds_per_run, dtype=np.float64)
        if e.shape != t.shape or e.ndim != 1 or len(e) == 0:
            raise ConfigError("need equal-length non-empty runs")
        if np.any(t <= 0) or np.any(e < 0):
            raise ConfigError("non-positive time or negative edge count")
        return cls(e / t)

    @property
    def num_runs(self) -> int:
        return len(self.teps)

    def harmonic_mean(self) -> float:
        """The Graph500 headline number."""
        return float(len(self.teps) / np.sum(1.0 / self.teps))

    def harmonic_stddev(self) -> float:
        """Standard deviation of the harmonic mean (the spec's estimator).

        Computed on the reciprocals: hm * stderr(1/x) / mean(1/x), the
        classical delta-method estimate the reference code uses.
        """
        if len(self.teps) < 2:
            return 0.0
        inv = 1.0 / self.teps
        hm = self.harmonic_mean()
        stderr = np.std(inv, ddof=1) / np.sqrt(len(inv))
        return float(hm * hm * stderr)

    def min(self) -> float:
        return float(self.teps.min())

    def max(self) -> float:
        return float(self.teps.max())

    def median(self) -> float:
        return float(np.median(self.teps))

    def gteps(self) -> float:
        return self.harmonic_mean() / 1e9
