"""Benchmark suite runner: matrices of (scale, nodes, variant).

Convenience layer over :class:`~repro.graph500.runner.Graph500Runner` for
sweeps — functional weak/strong scaling studies and variant comparisons —
with a combined report table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.core.config import BFSConfig
from repro.errors import ConfigError, SimulatedCrash
from repro.graph500.report import BenchmarkReport
from repro.graph500.runner import Graph500Runner
from repro.utils.tables import Table


@dataclass(frozen=True)
class SuiteCase:
    scale: int
    nodes: int
    variant: str = "relay-cpe"


@dataclass
class SuiteResult:
    case: SuiteCase
    report: BenchmarkReport | None
    crashed: str | None = None

    @property
    def ok(self) -> bool:
        return self.report is not None


@dataclass
class BenchmarkSuite:
    """Run cases sequentially; crashes become rows, not exceptions.

    ``on_root_failure="skip"`` additionally degrades *within* a case: an
    unrecoverable root becomes a failed :class:`RootRun` row in that case's
    report rather than crashing the case.
    """

    cases: Sequence[SuiteCase]
    num_roots: int = 4
    seed: int = 1
    config: BFSConfig | None = None
    nodes_per_super_node: int | None = None
    resilience: object | None = None
    fault_plan: object | None = None
    node_faults: object | None = None
    on_root_failure: str = "abort"
    results: list[SuiteResult] = field(default_factory=list)

    def run(self) -> list[SuiteResult]:
        if not self.cases:
            raise ConfigError("empty suite")
        self.results = []
        for case in self.cases:
            try:
                report = Graph500Runner(
                    scale=case.scale,
                    nodes=case.nodes,
                    seed=self.seed,
                    variant=case.variant,
                    config=self.config,
                    nodes_per_super_node=self.nodes_per_super_node,
                    resilience=self.resilience,
                    fault_plan=self.fault_plan,
                    node_faults=self.node_faults,
                    on_root_failure=self.on_root_failure,
                ).run(num_roots=self.num_roots)
                self.results.append(SuiteResult(case, report))
            except SimulatedCrash as crash:
                self.results.append(SuiteResult(case, None, crashed=crash.reason))
        return self.results

    def table(self) -> str:
        t = Table(
            ["scale", "nodes", "variant", "GTEPS (hm)", "worst root", "status"],
            title="Benchmark suite",
        )
        for r in self.results:
            if r.ok and r.report.successful_runs:
                stats = r.report.stats
                status = "ok" if r.report.all_validated else "INVALID"
                failed = r.report.failed_runs
                if failed:
                    status += f" ({len(failed)} root(s) failed)"
                t.add_row(
                    [r.case.scale, r.case.nodes, r.case.variant,
                     f"{stats.gteps():.4f}", f"{stats.min() / 1e9:.4f}", status]
                )
            elif r.ok:
                t.add_row(
                    [r.case.scale, r.case.nodes, r.case.variant, "-", "-",
                     "ALL ROOTS FAILED"]
                )
            else:
                t.add_row(
                    [r.case.scale, r.case.nodes, r.case.variant, "-", "-",
                     f"CRASH: {r.crashed}"]
                )
        return t.render()
