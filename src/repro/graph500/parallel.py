"""Parallel multi-root execution for the Graph500 harness.

The benchmark's search roots are mutually independent: each ``run(root)``
resets the kernel state, and the simulated per-root duration is a span, not
an absolute clock. That independence lets the harness fan roots across a
fork-based process pool — the same per-root parallelism Bisson et al.
exploit to keep the Graph500 harness off the critical path — while the
expensive shared state (edge list, CSR, constructed kernel) reaches the
workers through copy-on-write fork memory, never through pickling.

Determinism: roots are assigned to workers *statically* (round-robin by
index) and every worker is a single fresh fork that runs its chunk in
order, so the merged report is a pure function of (graph, roots, workers)
— OS scheduling cannot reorder or re-home work. Parent maps,
traversed-edge counts and level counts are exactly equal to the sequential
path's; per-root simulated seconds agree to float round-off (each span is
measured against a clock advanced by whichever roots ran earlier on the
same kernel instance, and that history differs between chunkings).

Configurations with seeded fault injection or resilience transports are
*not* dispatched here: their RNG streams advance across roots, so per-root
results are history-dependent by design and only the sequential path
reproduces them.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass, field

from repro.errors import ValidationError

#: Per-benchmark state inherited by forked workers (never pickled).
_SHARED: "_SharedState | None" = None


@dataclass
class _SharedState:
    bfs: object  # constructed DistributedBFS (or compatible kernel)
    graph: object  # shared symmetrised/deduplicated CSRGraph
    edges: object  # raw EdgeList (TEPS accounting)
    validate_mode: str  # "sequential" | "distributed" | "none"
    validator: object | None  # DistributedValidator for "distributed"
    counter_keys: tuple[str, ...]  # cluster stats to delta per root
    collect_traces: bool = False  # ship per-level traces for telemetry


@dataclass
class RootOutcome:
    """Picklable per-root result shipped from a worker back to the parent."""

    index: int
    root: int
    traversed_edges: int = 0
    seconds: float = 0.0
    levels: int = 0
    validated: bool = True
    failure: str | None = None
    crash_reason: str | None = None
    crash_node: int | None = None
    validation_error: str | None = None
    validation_seconds: float = 0.0
    counters: dict[str, float] = field(default_factory=dict)
    #: Compact per-level records ``(level, direction, start, finish)``,
    #: filled when the parent collects telemetry (span recording happens in
    #: the parent: a child's in-process telemetry dies with the fork).
    traces: list[tuple[int, str, float, float]] | None = None


def fork_available() -> bool:
    """Whether fork-based worker processes exist on this platform."""
    return "fork" in mp.get_all_start_methods()


def _execute_root(index: int, root: int) -> RootOutcome:
    """Run kernel + validation + TEPS accounting for one root.

    Shared by the sequential fallback and the forked workers; reads the
    module-level :data:`_SHARED` state.
    """
    from repro.errors import SimulatedCrash
    from repro.graph500.timing import traversed_edges
    from repro.graph500.validate import validate_bfs_result

    state = _SHARED
    assert state is not None, "worker started without shared benchmark state"
    before = {
        key: state.bfs.cluster.stats.value(key) for key in state.counter_keys
    }
    try:
        result = state.bfs.run(root)
    except SimulatedCrash as crash:
        return RootOutcome(
            index=index,
            root=root,
            validated=False,
            failure=f"crash: {crash.reason}",
            crash_reason=crash.reason,
            crash_node=crash.node,
        )
    outcome = RootOutcome(
        index=index,
        root=root,
        seconds=result.sim_seconds,
        levels=result.levels,
    )
    if state.collect_traces:
        outcome.traces = [
            (t.level, t.direction, t.start, t.finish) for t in result.traces
        ]
    if state.validate_mode == "sequential":
        try:
            validate_bfs_result(state.graph, state.edges, root, result.parent)
        except ValidationError as exc:
            outcome.validated = False
            outcome.failure = f"validation: {exc}"
            outcome.validation_error = str(exc)
    elif state.validate_mode == "distributed" and state.validator is not None:
        vres = state.validator.validate(root, result.parent)
        outcome.validation_seconds = vres.sim_seconds
    outcome.traversed_edges = traversed_edges(state.edges, result.depths())
    after = {
        key: state.bfs.cluster.stats.value(key) for key in state.counter_keys
    }
    outcome.counters = {
        key: after[key] - before[key]
        for key in state.counter_keys
        if after[key] != before[key]
    }
    return outcome


def _worker_main(chunk: list[tuple[int, int]], queue) -> None:
    """Forked worker body: run an assigned chunk of roots, ship outcomes."""
    try:
        outcomes = [_execute_root(index, root) for index, root in chunk]
        queue.put(("ok", outcomes))
    except BaseException as exc:  # pragma: no cover - defensive
        import traceback

        queue.put(("error", f"{exc!r}\n{traceback.format_exc()}"))


def run_roots_parallel(
    bfs,
    graph,
    edges,
    roots,
    validate_mode: str,
    validator,
    workers: int,
    counter_keys: tuple[str, ...] = (),
    collect_traces: bool = False,
) -> list[RootOutcome]:
    """Fan ``roots`` across ``workers`` forked processes; ordered outcomes.

    The constructed ``bfs`` kernel, ``graph`` and ``edges`` are published to
    a module global before forking so children inherit them at zero copy
    cost — no pickling of graph-sized state in either direction. Worker
    ``w`` statically owns roots ``w, w+workers, w+2*workers, ...``.
    """
    global _SHARED
    if not fork_available():  # pragma: no cover - platform dependent
        raise RuntimeError("parallel root execution requires os.fork")
    tasks = [(i, int(root)) for i, root in enumerate(roots)]
    workers = min(workers, len(tasks))
    chunks = [tasks[w::workers] for w in range(workers)]
    _SHARED = _SharedState(
        bfs=bfs,
        graph=graph,
        edges=edges,
        validate_mode=validate_mode,
        validator=validator,
        counter_keys=tuple(counter_keys),
        collect_traces=collect_traces,
    )
    ctx = mp.get_context("fork")
    queue = ctx.SimpleQueue()
    procs = [
        ctx.Process(target=_worker_main, args=(chunk, queue), daemon=True)
        for chunk in chunks
    ]
    try:
        for proc in procs:
            proc.start()
        outcomes: list[RootOutcome] = []
        for _ in procs:
            status, payload = queue.get()
            if status == "error":  # pragma: no cover - defensive
                raise RuntimeError(f"parallel root worker failed: {payload}")
            outcomes.extend(payload)
        for proc in procs:
            proc.join()
    finally:
        _SHARED = None
        for proc in procs:
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
    return sorted(outcomes, key=lambda o: o.index)
