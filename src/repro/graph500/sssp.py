"""Graph500 SSSP kernel (the benchmark's later "Kernel 3") as an extension.

The paper predates the official SSSP kernel but names SSSP first among the
algorithms its techniques transfer to (Section 8). This module provides the
benchmark-shaped harness: run a distributed SSSP per sampled root over the
simulated machine, validate the distances, and report harmonic-mean TEPS
over the weighted graph.

Validation (no reference Dijkstra needed, mirroring the spec's approach):

1. ``dist[root] == 0`` and every finite distance is non-negative;
2. **feasibility** — no edge is over-tight: ``dist[v] <= dist[u] + w(u,v)``
   for every edge, both directions;
3. **witness** — every reached vertex (except the root) has at least one
   neighbour u with ``dist[v] == dist[u] + w(u,v)`` (its shortest path's
   last hop exists);
4. **component completeness** — no edge joins a reached and an unreached
   vertex.

Feasibility plus witnesses pins every finite value to the exact shortest
distance, by induction along witness chains.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.sssp import edge_weight
from repro.errors import ConfigError, ValidationError
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.graph.kronecker import KroneckerGenerator
from repro.graph500.roots import sample_roots
from repro.graph500.spec import Graph500Spec
from repro.graph500.timing import TepsStatistics, traversed_edges


def validate_sssp_result(
    graph: CSRGraph,
    edges: EdgeList,
    root: int,
    dist: np.ndarray,
    max_weight: int = 8,
) -> None:
    """Run the four SSSP rules; raise ValidationError on the first breach."""
    dist = np.asarray(dist, dtype=np.float64)
    n = graph.num_vertices
    if dist.shape != (n,):
        raise ConfigError(f"dist must have shape ({n},)")
    if not 0 <= root < n:
        raise ConfigError(f"root {root} out of range")

    if dist[root] != 0:
        raise ValidationError(f"rule 1: dist[root] = {dist[root]}, not 0")
    finite = np.isfinite(dist)
    if (dist[finite] < 0).any():
        raise ValidationError("rule 1: negative distance")

    e = edges.without_self_loops()
    w = edge_weight(e.src, e.dst, max_weight)
    du, dv = dist[e.src], dist[e.dst]
    both = np.isfinite(du) & np.isfinite(dv)
    over = both & ((dv - du > w + 1e-9) | (du - dv > w + 1e-9))
    if over.any():
        i = int(np.flatnonzero(over)[0])
        raise ValidationError(
            f"rule 2: edge ({e.src[i]}, {e.dst[i]}) of weight {w[i]} is "
            f"over-tight: {du[i]} vs {dv[i]}"
        )
    if (np.isfinite(du) != np.isfinite(dv)).any():
        i = int(np.flatnonzero(np.isfinite(du) != np.isfinite(dv))[0])
        raise ValidationError(
            f"rule 4: edge ({e.src[i]}, {e.dst[i]}) straddles the "
            "reached/unreached boundary"
        )

    # Rule 3: witnesses. For every reached v != root there must be a
    # neighbour u with dist[v] == dist[u] + w(u, v).
    reached = np.flatnonzero(finite)
    reached = reached[reached != root]
    if len(reached):
        srcs, tgts = graph.expand(reached)
        ww = edge_weight(srcs, tgts, max_weight)
        ok_edge = np.isfinite(dist[tgts]) & (
            np.abs(dist[srcs] - (dist[tgts] + ww)) < 1e-9
        )
        has_witness = np.zeros(n, dtype=bool)
        np.logical_or.at(has_witness, srcs[ok_edge], True)
        missing = reached[~has_witness[reached]]
        if len(missing):
            v = int(missing[0])
            raise ValidationError(
                f"rule 3: vertex {v} at distance {dist[v]} has no witness edge"
            )


@dataclass
class SSSPReport:
    spec: Graph500Spec
    nodes: int
    runs: list[tuple[int, int, float]] = field(default_factory=list)  # root, edges, secs

    @property
    def stats(self) -> TepsStatistics:
        return TepsStatistics.from_runs(
            [e for _, e, _ in self.runs], [t for _, _, t in self.runs]
        )

    def summary(self) -> str:
        s = self.stats
        return (
            f"Graph500 SSSP (extension) — scale {self.spec.scale}, "
            f"{self.nodes} nodes: {len(self.runs)} roots, "
            f"harmonic mean {s.gteps():.4f} GTEPS"
        )


class SSSPRunner:
    """Benchmark-shaped SSSP harness over the simulated machine."""

    def __init__(
        self,
        scale: int,
        nodes: int,
        seed: int = 1,
        max_weight: int = 8,
        algorithm: str = "delta-stepping",
        config=None,
        nodes_per_super_node: int | None = None,
    ):
        if algorithm not in ("delta-stepping", "bellman-ford"):
            raise ConfigError(f"unknown SSSP algorithm {algorithm!r}")
        self.spec = Graph500Spec(scale=scale)
        self.nodes = nodes
        self.seed = seed
        self.max_weight = max_weight
        self.algorithm = algorithm
        self.config = config
        self.nodes_per_super_node = nodes_per_super_node

    def run(self, num_roots: int = 16) -> SSSPReport:
        edges = KroneckerGenerator(self.spec.scale, seed=self.seed).generate()
        graph = CSRGraph.from_edges(edges)
        roots = sample_roots(edges, num_roots, seed=self.seed)
        if self.algorithm == "delta-stepping":
            from repro.algorithms.delta_stepping import DistributedDeltaStepping

            solver = DistributedDeltaStepping(
                edges, self.nodes, max_weight=self.max_weight,
                config=self.config,
                nodes_per_super_node=self.nodes_per_super_node,
            )
        else:
            from repro.algorithms.sssp import DistributedSSSP

            solver = DistributedSSSP(
                edges, self.nodes, max_weight=self.max_weight,
                config=self.config,
                nodes_per_super_node=self.nodes_per_super_node,
            )
        report = SSSPReport(spec=self.spec, nodes=self.nodes)
        for root in roots:
            result = solver.run(int(root))
            validate_sssp_result(
                graph, edges, int(root), result.dist, self.max_weight
            )
            reached = np.isfinite(result.dist)
            count = traversed_edges(edges, np.where(reached, 0, -1))
            report.runs.append((int(root), count, result.sim_seconds))
        return report
