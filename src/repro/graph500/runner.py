"""End-to-end Graph500 benchmark runner over the simulated machine.

Steps (Section 2.3): generate -> sample roots -> construct -> run kernel per
root -> validate -> report. Wall-clock time is irrelevant here; *simulated*
seconds from the machine/network models produce the TEPS figures.

Resilience hooks: a :class:`~repro.resilience.config.ResilienceConfig`
turns on the reliable transport and/or checkpointed recovery inside the
kernel; ``fault_plan`` / ``node_faults`` install seeded fault injectors on
the kernel's cluster (below the transport, so retransmissions are at risk
too); and ``on_root_failure="skip"`` records an unrecoverable root as a
failed :class:`~repro.graph500.report.RootRun` — with its failure reason —
instead of aborting the whole benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, SimulatedCrash, ValidationError
from repro.graph.csr import CSRGraph
from repro.graph.kronecker import KroneckerGenerator
from repro.graph500.report import BenchmarkReport, RootRun
from repro.graph500.roots import sample_roots
from repro.graph500.spec import Graph500Spec
from repro.graph500.timing import traversed_edges
from repro.graph500.validate import validate_bfs_result

#: Transport/fault counters surfaced into ``report.extra`` when non-zero.
_RESILIENCE_COUNTERS = (
    "rt_messages", "acks", "retransmits", "gave_up", "dup_suppressed",
    "corrupt_detected", "dead_letters", "node_crashes", "checkpoints",
    "recoveries", "fault_drops", "fault_duplicates", "fault_delays",
    "fault_reorders", "fault_corruptions",
)


class Graph500Runner:
    """Configure once, ``run()`` to get a :class:`BenchmarkReport`."""

    def __init__(
        self,
        scale: int,
        nodes: int,
        edge_factor: int = 16,
        seed: int = 1,
        variant: str = "relay-cpe",
        config=None,
        nodes_per_super_node: int | None = None,
        validate: bool | str = "sequential",
        resilience=None,
        fault_plan=None,
        node_faults=None,
        on_root_failure: str = "abort",
    ):
        if nodes < 1:
            raise ConfigError(f"need at least one simulated node, got {nodes}")
        self.spec = Graph500Spec(scale=scale, edge_factor=edge_factor)
        self.nodes = nodes
        self.seed = seed
        self.variant = variant
        self.config = config
        self.nodes_per_super_node = nodes_per_super_node
        if validate is True:
            validate = "sequential"
        elif validate is False:
            validate = "none"
        if validate not in ("sequential", "distributed", "none"):
            raise ConfigError(
                f"validate must be sequential/distributed/none, got {validate!r}"
            )
        self.validate = validate
        self.resilience = resilience
        self.fault_plan = fault_plan
        self.node_faults = node_faults
        if on_root_failure not in ("skip", "abort"):
            raise ConfigError(
                f"on_root_failure must be skip/abort, got {on_root_failure!r}"
            )
        self.on_root_failure = on_root_failure

    def run(self, num_roots: int = 64) -> BenchmarkReport:
        # Step 1: generate the raw edge list.
        gen = KroneckerGenerator(
            self.spec.scale, self.spec.edge_factor, seed=self.seed
        )
        edges = gen.generate()

        # Step 2: sample non-trivial search roots.
        roots = sample_roots(edges, num_roots, seed=self.seed)

        # Step 3: construct search structures — the global CSR for
        # validation and the distributed kernel state.
        graph = CSRGraph.from_edges(edges)
        from repro.baselines import make_variant  # late: heavy import chain

        bfs = make_variant(
            self.variant,
            edges,
            self.nodes,
            config=self.config,
            nodes_per_super_node=self.nodes_per_super_node,
            resilience=self.resilience,
        )
        # Fault injectors wrap the cluster's raw send path, *below* the
        # reliable channel (which intercepts delivery and sends through
        # ``cluster.send`` dynamically): every retransmission re-rolls the
        # fault dice, exactly like a lossy wire.
        if self.fault_plan is not None:
            from repro.sim.faults import RandomFaultInjector

            RandomFaultInjector(bfs.cluster, self.fault_plan)
        if self.node_faults is not None:
            from repro.sim.faults import NodeFaultInjector

            NodeFaultInjector(bfs.cluster, self.node_faults)

        report = BenchmarkReport(
            spec=self.spec,
            nodes=self.nodes,
            variant=self.variant,
            construction_seconds=bfs.construction_seconds,
        )
        validator = None
        if self.validate == "distributed":
            from repro.graph500.distributed_validate import DistributedValidator

            validator = DistributedValidator(
                edges,
                self.nodes,
                config=bfs.config,
                nodes_per_super_node=self.nodes_per_super_node,
            )

        # Steps 4-5: kernel + validation per root.
        for root in np.asarray(roots):
            try:
                result = bfs.run(int(root))
            except SimulatedCrash as crash:
                if self.on_root_failure == "abort":
                    raise
                report.runs.append(
                    RootRun(
                        root=int(root),
                        traversed_edges=0,
                        seconds=0.0,
                        levels=0,
                        validated=False,
                        failure=f"crash: {crash.reason}",
                    )
                )
                continue
            validated = True
            failure = None
            if self.validate == "sequential":
                try:
                    validate_bfs_result(graph, edges, int(root), result.parent)
                except ValidationError as exc:
                    validated = False
                    if self.on_root_failure == "abort":
                        raise
                    failure = f"validation: {exc}"
            elif validator is not None:
                vres = validator.validate(int(root), result.parent)
                report.extra["validation_seconds"] = (
                    report.extra.get("validation_seconds", 0.0) + vres.sim_seconds
                )
            edges_traversed = traversed_edges(edges, result.depths())
            report.runs.append(
                RootRun(
                    root=int(root),
                    traversed_edges=edges_traversed,
                    seconds=result.sim_seconds,
                    levels=result.levels,
                    validated=validated,
                    failure=failure,
                )
            )
        for key in _RESILIENCE_COUNTERS:
            value = bfs.cluster.stats.value(key)
            if value:
                report.extra[key] = value
        return report
