"""End-to-end Graph500 benchmark runner over the simulated machine.

Steps (Section 2.3): generate -> sample roots -> construct -> run kernel per
root -> validate -> report. Wall-clock time is irrelevant here; *simulated*
seconds from the machine/network models produce the TEPS figures.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, ValidationError
from repro.graph.csr import CSRGraph
from repro.graph.kronecker import KroneckerGenerator
from repro.graph500.report import BenchmarkReport, RootRun
from repro.graph500.roots import sample_roots
from repro.graph500.spec import Graph500Spec
from repro.graph500.timing import traversed_edges
from repro.graph500.validate import validate_bfs_result


class Graph500Runner:
    """Configure once, ``run()`` to get a :class:`BenchmarkReport`."""

    def __init__(
        self,
        scale: int,
        nodes: int,
        edge_factor: int = 16,
        seed: int = 1,
        variant: str = "relay-cpe",
        config=None,
        nodes_per_super_node: int | None = None,
        validate: bool | str = "sequential",
    ):
        if nodes < 1:
            raise ConfigError(f"need at least one simulated node, got {nodes}")
        self.spec = Graph500Spec(scale=scale, edge_factor=edge_factor)
        self.nodes = nodes
        self.seed = seed
        self.variant = variant
        self.config = config
        self.nodes_per_super_node = nodes_per_super_node
        if validate is True:
            validate = "sequential"
        elif validate is False:
            validate = "none"
        if validate not in ("sequential", "distributed", "none"):
            raise ConfigError(
                f"validate must be sequential/distributed/none, got {validate!r}"
            )
        self.validate = validate

    def run(self, num_roots: int = 64) -> BenchmarkReport:
        # Step 1: generate the raw edge list.
        gen = KroneckerGenerator(
            self.spec.scale, self.spec.edge_factor, seed=self.seed
        )
        edges = gen.generate()

        # Step 2: sample non-trivial search roots.
        roots = sample_roots(edges, num_roots, seed=self.seed)

        # Step 3: construct search structures — the global CSR for
        # validation and the distributed kernel state.
        graph = CSRGraph.from_edges(edges)
        from repro.baselines import make_variant  # late: heavy import chain

        bfs = make_variant(
            self.variant,
            edges,
            self.nodes,
            config=self.config,
            nodes_per_super_node=self.nodes_per_super_node,
        )

        report = BenchmarkReport(
            spec=self.spec,
            nodes=self.nodes,
            variant=self.variant,
            construction_seconds=bfs.construction_seconds,
        )
        validator = None
        if self.validate == "distributed":
            from repro.graph500.distributed_validate import DistributedValidator

            validator = DistributedValidator(
                edges,
                self.nodes,
                config=bfs.config,
                nodes_per_super_node=self.nodes_per_super_node,
            )

        # Steps 4-5: kernel + validation per root.
        for root in np.asarray(roots):
            result = bfs.run(int(root))
            validated = True
            if self.validate == "sequential":
                try:
                    validate_bfs_result(graph, edges, int(root), result.parent)
                except ValidationError:
                    validated = False
                    raise
            elif validator is not None:
                vres = validator.validate(int(root), result.parent)
                report.extra["validation_seconds"] = (
                    report.extra.get("validation_seconds", 0.0) + vres.sim_seconds
                )
            edges_traversed = traversed_edges(edges, result.depths())
            report.runs.append(
                RootRun(
                    root=int(root),
                    traversed_edges=edges_traversed,
                    seconds=result.sim_seconds,
                    levels=result.levels,
                    validated=validated,
                )
            )
        return report
