"""End-to-end Graph500 benchmark runner over the simulated machine.

Steps (Section 2.3): generate -> sample roots -> construct -> run kernel per
root -> validate -> report. Wall-clock time is irrelevant here; *simulated*
seconds from the machine/network models produce the TEPS figures.

Construction is shared: the symmetrised deduplicated CSR is built once and
threaded through both the kernel (``make_variant``) and the validator, so
benchmark step (3) is paid a single time per run.

Multi-root execution: the spec's 64 roots are independent, so
``workers=N`` fans them across a fork-based process pool (see
:mod:`repro.graph500.parallel`); ``workers=1`` keeps the exact sequential
path. Configurations with fault injection or resilience transports always
run sequentially — their seeded RNG streams advance across roots, and only
the sequential order replays them.

Resilience hooks: a :class:`~repro.resilience.config.ResilienceConfig`
turns on the reliable transport and/or checkpointed recovery inside the
kernel; ``fault_plan`` / ``node_faults`` install seeded fault injectors on
the kernel's cluster (below the transport, so retransmissions are at risk
too); and ``on_root_failure="skip"`` records an unrecoverable root as a
failed :class:`~repro.graph500.report.RootRun` — with its failure reason —
instead of aborting the whole benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, SimulatedCrash, ValidationError
from repro.graph.csr import CSRGraph
from repro.graph.kronecker import KroneckerGenerator
from repro.graph500.report import BenchmarkReport, RootRun
from repro.graph500.roots import sample_roots
from repro.graph500.spec import Graph500Spec
from repro.graph500.timing import traversed_edges
from repro.graph500.validate import validate_bfs_result

#: Transport/fault counters surfaced into ``report.extra`` when non-zero.
_RESILIENCE_COUNTERS = (
    "rt_messages", "acks", "retransmits", "gave_up", "dup_suppressed",
    "corrupt_detected", "dead_letters", "node_crashes", "checkpoints",
    "recoveries", "fault_drops", "fault_duplicates", "fault_delays",
    "fault_reorders", "fault_corruptions", "checkpoint_bytes",
    "disk_losses", "disk_corruptions", "shards_rebuilt", "scrub_passes",
    "scrub_repairs",
)


class Graph500Runner:
    """Configure once, ``run()`` to get a :class:`BenchmarkReport`."""

    def __init__(
        self,
        scale: int,
        nodes: int,
        edge_factor: int = 16,
        seed: int = 1,
        variant: str = "relay-cpe",
        config=None,
        nodes_per_super_node: int | None = None,
        validate: bool | str = "sequential",
        resilience=None,
        fault_plan=None,
        node_faults=None,
        disk_faults=None,
        on_root_failure: str = "abort",
        workers: int = 1,
        engine_partitions: int = 1,
        drain_workers: int = 1,
        drain_backend: str = "thread",
        telemetry=None,
        sanitize: bool = False,
    ):
        if nodes < 1:
            raise ConfigError(f"need at least one simulated node, got {nodes}")
        self.spec = Graph500Spec(scale=scale, edge_factor=edge_factor)
        self.nodes = nodes
        self.seed = seed
        self.variant = variant
        self.config = config
        self.nodes_per_super_node = nodes_per_super_node
        if validate is True:
            validate = "sequential"
        elif validate is False:
            validate = "none"
        if validate not in ("sequential", "distributed", "none"):
            raise ConfigError(
                f"validate must be sequential/distributed/none, got {validate!r}"
            )
        self.validate = validate
        self.resilience = resilience
        self.fault_plan = fault_plan
        self.node_faults = node_faults
        self.disk_faults = disk_faults
        if on_root_failure not in ("skip", "abort"):
            raise ConfigError(
                f"on_root_failure must be skip/abort, got {on_root_failure!r}"
            )
        self.on_root_failure = on_root_failure
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        if engine_partitions < 1:
            raise ConfigError(
                f"engine partitions must be >= 1, got {engine_partitions}"
            )
        #: Conservative-sync PDES partition count for the kernel's event
        #: engine (``BFSConfig.engine_partitions``); 1 keeps the sequential
        #: engine. Results are pinned bit-identical either way.
        self.engine_partitions = engine_partitions
        if drain_workers < 1:
            raise ConfigError(f"drain workers must be >= 1, got {drain_workers}")
        if drain_backend not in ("thread", "process"):
            raise ConfigError(
                f"drain backend must be 'thread' or 'process', "
                f"got {drain_backend!r}"
            )
        #: Parallel drain pool size for the partitioned engine
        #: (``BFSConfig.drain_workers``); 1 keeps coordinator-only drains.
        #: Bit-identical at any value.
        self.drain_workers = drain_workers
        self.drain_backend = drain_backend
        #: The last run's :meth:`PartitionedEngine.partition_report`
        #: (None when the run used the sequential engine or forked root
        #: workers, whose kernels die with the children).
        self.partition_report = None
        #: Optional :class:`repro.telemetry.Telemetry`. Sequential runs get
        #: full kernel instrumentation (spans, labeled metrics, busy
        #: intervals); ``workers>1`` runs derive the run/root/level span
        #: skeleton from the merged outcomes (a forked child's in-process
        #: telemetry dies with the child).
        self.telemetry = telemetry
        #: Install the runtime sanitizers (:mod:`repro.sanitizers.runtime`)
        #: on the constructed kernel: SPM write-conflict and message-
        #: mutation detection. Forces sequential execution — the detectors
        #: accumulate state in-process.
        self.sanitize = sanitize

    # ------------------------------------------------------------- dispatch --
    def _effective_workers(self, num_roots: int) -> int:
        """How many worker processes this configuration may actually use."""
        if self.workers <= 1 or num_roots <= 1:
            return 1
        if (
            self.fault_plan is not None
            or self.node_faults is not None
            or self.disk_faults is not None
            or self.resilience is not None
        ):
            # Seeded fault/transport RNG streams advance across roots; only
            # the sequential order replays them faithfully.
            return 1
        if self.sanitize:
            # Sanitizer digests/claims accumulate in-process.
            return 1
        from repro.graph500.parallel import fork_available

        if not fork_available():  # pragma: no cover - platform dependent
            return 1
        return min(self.workers, num_roots)

    def run(
        self,
        num_roots: int = 64,
        *,
        edges=None,
        graph: CSRGraph | None = None,
        roots=None,
    ) -> BenchmarkReport:
        """Run the benchmark; prebuilt artifacts skip their pipeline step.

        ``edges`` / ``graph`` / ``roots`` let a long-lived caller (the
        service catalog pins exactly these three) hand the generated edge
        list, the symmetrised deduplicated CSR and the sampled roots
        straight through — no regeneration, no CSR re-derivation, no
        re-validation beyond the vertex-count check ``make_variant``'s
        kernel already does. A ``graph`` without its ``edges`` is refused:
        TEPS accounting and validation need the raw tuples.
        """
        if graph is not None and edges is None:
            raise ConfigError("a prebuilt graph needs its edge list too")
        # Step 1: generate the raw edge list.
        if edges is None:
            gen = KroneckerGenerator(
                self.spec.scale, self.spec.edge_factor, seed=self.seed
            )
            edges = gen.generate()

        # Step 2: sample non-trivial search roots.
        if roots is None:
            roots = sample_roots(edges, num_roots, seed=self.seed)

        # Step 3: construct the search structure *once* — the symmetrised
        # deduplicated CSR serves the validator and, threaded through
        # ``make_variant``, the distributed kernel. (``from_edges`` caches
        # on the edge list, so a caller that already built it pays nothing
        # even without passing ``graph=``.)
        if graph is None:
            graph = CSRGraph.from_edges(edges)
        workers = self._effective_workers(num_roots)
        shared = None
        if workers > 1 or (
            self.engine_partitions > 1
            and self.drain_workers > 1
            and self.drain_backend == "process"
        ):
            # Rehost the read-only CSR into one shared-memory segment so
            # worker processes — forked per-root workers or per-window
            # drain workers — map the edge arrays zero-copy instead of
            # duplicating them (and so sharing survives non-fork start
            # methods, unlike copy-on-write inheritance).
            from repro.graph.shm import SharedCSR, shared_memory_available

            if shared_memory_available():
                shared = SharedCSR.host(graph)
                graph = shared.graph
        # The finally (plus SharedCSR's own atexit unlink guard) covers
        # every exit path, including a worker crash propagating out of
        # the pool mid-root: the segment never outlives the run.
        try:
            return self._run_steps(edges, roots, graph, workers)
        finally:
            if shared is not None:
                shared.destroy()

    def _run_steps(self, edges, roots, graph, workers) -> BenchmarkReport:
        config = self.config
        if self.engine_partitions != 1 or self.drain_workers != 1:
            from dataclasses import replace

            from repro.core.config import BFSConfig

            config = replace(
                config or BFSConfig(),
                engine_partitions=self.engine_partitions,
                drain_workers=self.drain_workers,
                drain_backend=self.drain_backend,
            )
        from repro.baselines import make_variant  # late: heavy import chain

        bfs = make_variant(
            self.variant,
            edges,
            self.nodes,
            config=config,
            nodes_per_super_node=self.nodes_per_super_node,
            resilience=self.resilience,
            graph=graph,
        )
        # Fault injectors wrap the cluster's raw send path, *below* the
        # reliable channel (which intercepts delivery and sends through
        # ``cluster.send`` dynamically): every retransmission re-rolls the
        # fault dice, exactly like a lossy wire.
        if self.fault_plan is not None:
            from repro.sim.faults import RandomFaultInjector

            RandomFaultInjector(bfs.cluster, self.fault_plan)
        if self.node_faults is not None:
            from repro.sim.faults import NodeFaultInjector

            NodeFaultInjector(bfs.cluster, self.node_faults)
        if self.disk_faults is not None:
            from repro.sim.faults import DiskFaultInjector

            DiskFaultInjector(bfs, self.disk_faults, seed=self.seed)
        if self.sanitize:
            from repro.sanitizers.runtime import (
                MessageSanitizer,
                SpmWriteSanitizer,
            )

            if getattr(bfs, "spm_sanitizer", None) is None:
                bfs.spm_sanitizer = SpmWriteSanitizer()
            if getattr(bfs, "message_sanitizer", None) is None:
                bfs.message_sanitizer = MessageSanitizer(bfs.cluster)

        report = BenchmarkReport(
            spec=self.spec,
            nodes=self.nodes,
            variant=self.variant,
            construction_seconds=bfs.construction_seconds,
        )
        validator = None
        if self.validate == "distributed":
            from repro.graph500.distributed_validate import DistributedValidator

            validator = DistributedValidator(
                edges,
                self.nodes,
                config=bfs.config,
                nodes_per_super_node=self.nodes_per_super_node,
            )

        tel = self.telemetry
        if tel is not None and not tel.enabled:
            tel = None
        run_span = -1
        if tel is not None:
            run_span = tel.spans.open(
                "run",
                "run",
                parent=tel.current,
                scale=self.spec.scale,
                nodes=self.nodes,
                variant=self.variant,
                workers=workers,
            )
            tel.push(run_span)
            if workers == 1:
                tel.attach_kernel(bfs)
        if workers > 1:
            self._run_parallel(report, bfs, graph, edges, roots, validator, workers)
        else:
            self._run_sequential(report, bfs, graph, edges, roots, validator)
        self.partition_report = None
        if workers == 1:
            from repro.sim.partition import PartitionedEngine

            if isinstance(bfs.engine, PartitionedEngine):
                self.partition_report = bfs.engine.partition_report()
        if tel is not None:
            closed_roots = [s for s in tel.spans.by_category("root") if s.closed]
            start = min((s.start for s in closed_roots), default=0.0)
            finish = max((s.finish for s in closed_roots), default=start)
            tel.spans.close(run_span, start, finish)
            tel.pop()
        return report

    # ----------------------------------------------------------- sequential --
    def _run_sequential(
        self, report, bfs, graph, edges, roots, validator
    ) -> None:
        """Steps 4-5, one root after another on the shared kernel."""
        for root in np.asarray(roots):
            try:
                result = bfs.run(int(root))
            except SimulatedCrash as crash:
                if self.on_root_failure == "abort":
                    raise
                report.runs.append(
                    RootRun(
                        root=int(root),
                        traversed_edges=0,
                        seconds=0.0,
                        levels=0,
                        validated=False,
                        failure=f"crash: {crash.reason}",
                    )
                )
                continue
            validated = True
            failure = None
            if self.validate == "sequential":
                try:
                    validate_bfs_result(graph, edges, int(root), result.parent)
                except ValidationError as exc:
                    validated = False
                    if self.on_root_failure == "abort":
                        raise
                    failure = f"validation: {exc}"
            elif validator is not None:
                vres = validator.validate(int(root), result.parent)
                report.extra["validation_seconds"] = (
                    report.extra.get("validation_seconds", 0.0) + vres.sim_seconds
                )
            edges_traversed = traversed_edges(edges, result.depths())
            report.runs.append(
                RootRun(
                    root=int(root),
                    traversed_edges=edges_traversed,
                    seconds=result.sim_seconds,
                    levels=result.levels,
                    validated=validated,
                    failure=failure,
                )
            )
        for key in _RESILIENCE_COUNTERS:
            value = bfs.cluster.stats.value(key)
            if value:
                report.extra[key] = value
        msg_san = getattr(bfs, "message_sanitizer", None)
        if msg_san is not None:
            report.extra["sanitizer_messages_checked"] = (
                msg_san.messages_checked
            )
            report.extra["sanitizer_mutations"] = len(msg_san.violations)
        spm_san = getattr(bfs, "spm_sanitizer", None)
        if spm_san is not None:
            report.extra["sanitizer_spm_phases"] = spm_san.phases_checked
            report.extra["sanitizer_spm_conflicts"] = len(spm_san.conflicts)

    # ------------------------------------------------------------- parallel --
    def _run_parallel(
        self, report, bfs, graph, edges, roots, validator, workers
    ) -> None:
        """Steps 4-5 fanned across forked workers, merged in root order."""
        from repro.graph500.parallel import run_roots_parallel

        construction_counters = {
            key: bfs.cluster.stats.value(key) for key in _RESILIENCE_COUNTERS
        }
        tel = self.telemetry
        if tel is not None and not tel.enabled:
            tel = None
        outcomes = run_roots_parallel(
            bfs,
            graph,
            edges,
            np.asarray(roots),
            self.validate,
            validator,
            workers,
            counter_keys=_RESILIENCE_COUNTERS,
            collect_traces=tel is not None,
        )
        if self.on_root_failure == "abort":
            for outcome in outcomes:
                if outcome.crash_reason is not None:
                    raise SimulatedCrash(
                        outcome.crash_reason, node=outcome.crash_node
                    )
                if outcome.validation_error is not None:
                    raise ValidationError(outcome.validation_error)
        totals = dict(construction_counters)
        validation_seconds = 0.0
        for outcome in outcomes:
            report.runs.append(
                RootRun(
                    root=outcome.root,
                    traversed_edges=outcome.traversed_edges,
                    seconds=outcome.seconds,
                    levels=outcome.levels,
                    validated=outcome.validated,
                    failure=outcome.failure,
                )
            )
            validation_seconds += outcome.validation_seconds
            for key, delta in outcome.counters.items():
                totals[key] = totals.get(key, 0) + delta
            if tel is not None and outcome.traces:
                # Rebuild the root/level span skeleton the kernel would have
                # recorded live (times are the child's simulated clock).
                t0 = outcome.traces[0][2]
                root_span = tel.spans.open(
                    f"root {outcome.root}", "root",
                    parent=tel.current, root=outcome.root,
                )
                for lvl, direction, start, finish in outcome.traces:
                    tel.spans.record(
                        f"level {lvl}", "level", start, finish,
                        parent=root_span, level=lvl, direction=direction,
                    )
                tel.spans.close(
                    root_span, t0, t0 + outcome.seconds,
                    sim_seconds=outcome.seconds, levels=outcome.levels,
                )
        if validator is not None:
            report.extra["validation_seconds"] = validation_seconds
        for key in _RESILIENCE_COUNTERS:
            if totals.get(key):
                report.extra[key] = totals[key]
