"""Benchmark constants from the Graph500 specification."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.graph.kronecker import DEFAULT_EDGE_FACTOR, INITIATOR


@dataclass(frozen=True)
class Graph500Spec:
    """Parameters of one benchmark problem."""

    scale: int
    edge_factor: int = DEFAULT_EDGE_FACTOR
    num_roots: int = 64
    initiator: tuple[float, float, float, float] = INITIATOR

    def __post_init__(self) -> None:
        if self.scale < 1:
            raise ConfigError(f"scale must be >= 1, got {self.scale}")
        if self.num_roots < 1:
            raise ConfigError(f"need at least one root, got {self.num_roots}")

    @property
    def num_vertices(self) -> int:
        return 1 << self.scale

    @property
    def num_edges(self) -> int:
        return self.edge_factor << self.scale

    def problem_class(self) -> str:
        """The spec's named problem classes by scale (toy..huge)."""
        for name, s in (
            ("toy", 26),
            ("mini", 29),
            ("small", 32),
            ("medium", 36),
            ("large", 39),
            ("huge", 42),
        ):
            if self.scale <= s:
                return name
        return "beyond-huge"
