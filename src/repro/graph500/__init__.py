"""Graph500 benchmark harness.

Section 2.3 of the paper lists the benchmark's steps: (1) generate the raw
graph, (2) select 64 non-trivial search roots, (3) construct the search
structure, (4) run the BFS kernel per root, (5) validate each result,
(6) compute and report performance. This package implements all six against
the simulated machine; the kernel itself is pluggable (the paper variant,
the baselines, or the sequential reference).
"""

from repro.graph500.spec import Graph500Spec
from repro.graph500.roots import sample_roots
from repro.graph500.reference import reference_bfs, reference_depths
from repro.graph500.validate import validate_bfs_result
from repro.graph500.distributed_validate import DistributedValidator
from repro.graph500.timing import TepsStatistics
from repro.graph500.report import BenchmarkReport, RootRun
from repro.graph500.runner import Graph500Runner

__all__ = [
    "Graph500Spec",
    "sample_roots",
    "reference_bfs",
    "reference_depths",
    "validate_bfs_result",
    "DistributedValidator",
    "TepsStatistics",
    "BenchmarkReport",
    "RootRun",
    "Graph500Runner",
]
