"""Benchmark report structures and rendering."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph500.spec import Graph500Spec
from repro.graph500.timing import TepsStatistics
from repro.utils.tables import Table
from repro.utils.units import fmt_count, fmt_time


@dataclass(frozen=True)
class RootRun:
    """Result of the kernel on one search root."""

    root: int
    traversed_edges: int
    seconds: float
    levels: int
    validated: bool

    @property
    def teps(self) -> float:
        return self.traversed_edges / self.seconds


@dataclass
class BenchmarkReport:
    """Everything step (6) needs to print."""

    spec: Graph500Spec
    nodes: int
    variant: str
    runs: list[RootRun] = field(default_factory=list)
    construction_seconds: float = 0.0
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def stats(self) -> TepsStatistics:
        return TepsStatistics.from_runs(
            [r.traversed_edges for r in self.runs],
            [r.seconds for r in self.runs],
        )

    @property
    def gteps(self) -> float:
        return self.stats.gteps()

    @property
    def all_validated(self) -> bool:
        return all(r.validated for r in self.runs)

    def summary(self) -> str:
        s = self.stats
        lines = [
            f"Graph500 BFS — scale {self.spec.scale} "
            f"(2^{self.spec.scale} vertices, edgefactor {self.spec.edge_factor}), "
            f"{self.nodes} simulated nodes, variant {self.variant!r}",
            f"  roots run:        {len(self.runs)} "
            f"({'all validated' if self.all_validated else 'VALIDATION FAILURES'})",
            f"  harmonic mean:    {s.gteps():.4f} GTEPS",
            f"  min / median / max: {s.min() / 1e9:.4f} / {s.median() / 1e9:.4f} / "
            f"{s.max() / 1e9:.4f} GTEPS",
            f"  construction:     {fmt_time(self.construction_seconds)} (simulated)",
        ]
        return "\n".join(lines)

    def to_json(self) -> str:
        """Machine-readable report (for result archiving / plotting)."""
        import json

        s = self.stats
        return json.dumps(
            {
                "scale": self.spec.scale,
                "edge_factor": self.spec.edge_factor,
                "nodes": self.nodes,
                "variant": self.variant,
                "gteps_harmonic_mean": s.gteps(),
                "gteps_min": s.min() / 1e9,
                "gteps_max": s.max() / 1e9,
                "all_validated": self.all_validated,
                "construction_seconds": self.construction_seconds,
                "extra": self.extra,
                "runs": [
                    {
                        "root": r.root,
                        "traversed_edges": int(r.traversed_edges),
                        "seconds": r.seconds,
                        "levels": r.levels,
                        "validated": r.validated,
                    }
                    for r in self.runs
                ],
            }
        )

    def per_root_table(self) -> str:
        t = Table(["root", "edges", "levels", "sim time", "GTEPS", "valid"])
        for r in self.runs:
            t.add_row(
                [
                    r.root,
                    fmt_count(r.traversed_edges),
                    r.levels,
                    fmt_time(r.seconds),
                    f"{r.teps / 1e9:.4f}",
                    "yes" if r.validated else "NO",
                ]
            )
        return t.render()
