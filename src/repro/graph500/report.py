"""Benchmark report structures and rendering."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph500.spec import Graph500Spec
from repro.graph500.timing import TepsStatistics
from repro.utils.tables import Table
from repro.utils.units import fmt_count, fmt_time


@dataclass(frozen=True)
class RootRun:
    """Result of the kernel on one search root.

    ``failure`` is ``None`` for a run that completed (its result may still
    have failed validation — see ``validated``); under the runner's
    ``on_root_failure="skip"`` policy it records *why* the root produced no
    usable result (an unrecoverable simulated crash, or the validation
    error) instead of aborting the whole benchmark.
    """

    root: int
    traversed_edges: int
    seconds: float
    levels: int
    validated: bool
    failure: str | None = None

    @property
    def teps(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return self.traversed_edges / self.seconds


@dataclass
class BenchmarkReport:
    """Everything step (6) needs to print."""

    spec: Graph500Spec
    nodes: int
    variant: str
    runs: list[RootRun] = field(default_factory=list)
    construction_seconds: float = 0.0
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def successful_runs(self) -> list[RootRun]:
        """Runs that produced a result (failed roots carry no timing)."""
        return [r for r in self.runs if r.failure is None]

    @property
    def failed_runs(self) -> list[RootRun]:
        return [r for r in self.runs if r.failure is not None]

    @property
    def stats(self) -> TepsStatistics:
        runs = self.successful_runs
        return TepsStatistics.from_runs(
            [r.traversed_edges for r in runs],
            [r.seconds for r in runs],
        )

    @property
    def gteps(self) -> float:
        return self.stats.gteps()

    @property
    def all_validated(self) -> bool:
        """Every *completed* run validated (failed roots report separately)."""
        return all(r.validated for r in self.successful_runs)

    def summary(self) -> str:
        lines = [
            f"Graph500 BFS — scale {self.spec.scale} "
            f"(2^{self.spec.scale} vertices, edgefactor {self.spec.edge_factor}), "
            f"{self.nodes} simulated nodes, variant {self.variant!r}",
        ]
        failed = self.failed_runs
        if not self.successful_runs:
            status = "NO ROOT COMPLETED"
        elif self.all_validated:
            status = "all validated"
        else:
            status = "VALIDATION FAILURES"
        if failed:
            status += f", {len(failed)} root(s) FAILED"
        lines.append(f"  roots run:        {len(self.runs)} ({status})")
        if self.successful_runs:
            s = self.stats
            lines += [
                f"  harmonic mean:    {s.gteps():.4f} GTEPS",
                f"  min / median / max: {s.min() / 1e9:.4f} / "
                f"{s.median() / 1e9:.4f} / {s.max() / 1e9:.4f} GTEPS",
            ]
        else:
            lines.append("  harmonic mean:    n/a (no root completed)")
        lines.append(
            f"  construction:     {fmt_time(self.construction_seconds)} (simulated)"
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        """Machine-readable report (for result archiving / plotting)."""
        import json

        ok = bool(self.successful_runs)
        s = self.stats if ok else None
        return json.dumps(
            {
                "scale": self.spec.scale,
                "edge_factor": self.spec.edge_factor,
                "nodes": self.nodes,
                "variant": self.variant,
                "gteps_harmonic_mean": s.gteps() if ok else None,
                "gteps_min": s.min() / 1e9 if ok else None,
                "gteps_max": s.max() / 1e9 if ok else None,
                "all_validated": self.all_validated,
                "failed_roots": len(self.failed_runs),
                "construction_seconds": self.construction_seconds,
                "extra": self.extra,
                "runs": [
                    {
                        "root": r.root,
                        "traversed_edges": int(r.traversed_edges),
                        "seconds": r.seconds,
                        "levels": r.levels,
                        "validated": r.validated,
                        "failure": r.failure,
                    }
                    for r in self.runs
                ],
            }
        )

    def per_root_table(self) -> str:
        t = Table(["root", "edges", "levels", "sim time", "GTEPS", "status"])
        for r in self.runs:
            if r.failure is not None:
                status = f"FAILED: {r.failure}"
            else:
                status = "ok" if r.validated else "INVALID"
            t.add_row(
                [
                    r.root,
                    fmt_count(r.traversed_edges),
                    r.levels,
                    fmt_time(r.seconds),
                    f"{r.teps / 1e9:.4f}",
                    status,
                ]
            )
        return t.render()
