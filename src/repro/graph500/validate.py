"""Graph500 result validation (benchmark step 5).

The spec's five rules, implemented vectorised over the whole parent map:

1. the parent map forms a tree rooted at the search root (no cycles);
2. tree edges connect vertices whose BFS depths differ by exactly one;
3. every edge of the input graph connects vertices whose depths differ by
   at most one, *or* has an unreached endpoint on both sides;
4. the BFS tree spans exactly the connected component containing the root;
5. a vertex and its claimed parent are actually joined by a graph edge.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, ValidationError
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.graph500.reference import depths_from_parents, reference_depths


def validate_bfs_result(
    graph: CSRGraph,
    edges: EdgeList,
    root: int,
    parent: np.ndarray,
) -> np.ndarray:
    """Run all five rules; returns the depth array on success.

    Raises :class:`~repro.errors.ValidationError` naming the violated rule.
    ``graph`` must be the symmetrised deduplicated CSR built from ``edges``.
    """
    parent = np.asarray(parent, dtype=np.int64)
    n = graph.num_vertices
    if parent.shape != (n,):
        raise ConfigError(f"parent map must have shape ({n},), got {parent.shape}")
    if not 0 <= root < n:
        raise ConfigError(f"root {root} out of range")

    if parent[root] != root:
        raise ValidationError(f"rule 1: parent[{root}] = {parent[root]}, not the root")
    out_of_range = (parent < -1) | (parent >= n)
    if out_of_range.any():
        bad = int(np.flatnonzero(out_of_range)[0])
        raise ValidationError(f"rule 1: parent[{bad}] = {parent[bad]} out of range")

    # Rule 1 (tree-ness) falls out of depths_from_parents: it only assigns
    # depths along parent chains that reach the root.
    try:
        depth = depths_from_parents(parent, root)
    except ConfigError as exc:
        raise ValidationError(f"rule 1: {exc}") from exc
    reached = parent >= 0
    if not np.array_equal(depth >= 0, reached):
        bad = int(np.flatnonzero((depth >= 0) != reached)[0])
        raise ValidationError(
            f"rule 1: vertex {bad} has a parent but no path to the root"
        )

    # Rule 2: each tree edge spans exactly one level.
    tree_children = np.flatnonzero(reached & (np.arange(n) != root))
    if len(tree_children):
        dd = depth[tree_children] - depth[parent[tree_children]]
        if not np.all(dd == 1):
            bad = int(tree_children[np.flatnonzero(dd != 1)[0]])
            raise ValidationError(
                f"rule 2: tree edge {parent[bad]} -> {bad} spans "
                f"{depth[bad] - depth[parent[bad]]} levels"
            )

    # Rule 3: every input edge has both ends within one level, or both
    # endpoints out of the component.
    e = edges.without_self_loops()
    du, dv = depth[e.src], depth[e.dst]
    both_reached = (du >= 0) & (dv >= 0)
    if np.any((du >= 0) != (dv >= 0)):
        bad = int(np.flatnonzero((du >= 0) != (dv >= 0))[0])
        raise ValidationError(
            f"rule 4: edge ({e.src[bad]}, {e.dst[bad]}) straddles the "
            "component boundary — some component vertex was not reached"
        )
    gap = np.abs(du[both_reached] - dv[both_reached])
    if gap.size and gap.max() > 1:
        idx = np.flatnonzero(both_reached)[int(np.argmax(gap))]
        raise ValidationError(
            f"rule 3: edge ({e.src[idx]}, {e.dst[idx]}) spans "
            f"{abs(int(du[idx]) - int(dv[idx]))} levels"
        )

    # Rule 4 (completeness): depths must match the reference BFS exactly —
    # this also pins rule 3's "within one level" to the *minimum* distances.
    ref = reference_depths(graph, root)
    if not np.array_equal(ref, depth):
        bad = int(np.flatnonzero(ref != depth)[0])
        raise ValidationError(
            f"rule 4: vertex {bad} at depth {depth[bad]}, reference says {ref[bad]}"
        )

    # Rule 5: claimed parent edges exist in the graph. Batched binary
    # search over the sorted CSR rows — O(Σ log deg), versus the
    # benchmark-dominating np.isin over the expanded adjacency.
    children = tree_children
    if len(children):
        ok = graph.has_edges(children, parent[children])
        if not ok.all():
            bad = int(children[np.flatnonzero(~ok)[0]])
            raise ValidationError(
                f"rule 5: claimed tree edge {parent[bad]} -> {bad} is not a "
                "graph edge"
            )
    return depth
