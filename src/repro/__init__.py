"""repro — reproduction of *Scalable Graph Traversal on Sunway TaihuLight with
Ten Million Cores* (Lin et al., IPDPS 2017).

The package is organised as a stack of substrates with the paper's
contribution on top:

- :mod:`repro.sim` — a small deterministic discrete-event engine.
- :mod:`repro.machine` — a model of the SW26010 heterogeneous CPU
  (MPE / CPE clusters / 64 KB SPM / DMA / 8x8 register mesh).
- :mod:`repro.network` — the TaihuLight two-level fat tree with 1:4
  oversubscription and a rank-level message-passing runtime (SimMPI).
- :mod:`repro.graph` — CSR graphs, the Graph500 Kronecker generator,
  1D partitioning and bitmap frontiers.
- :mod:`repro.graph500` — the benchmark harness (roots, validation, TEPS).
- :mod:`repro.core` — the paper's BFS: pipelined module mapping,
  contention-free data shuffling, and group-based message batching.
- :mod:`repro.baselines` — the Direct/Relay x MPE/CPE variants of Figure 11.
- :mod:`repro.perf` — the analytic cost model used to extend Figure 11 /
  Figure 12 to the full 40,768-node machine.
- :mod:`repro.algorithms` — SSSP / WCC / PageRank / k-core built on the same
  shuffle-and-relay substrate (Section 8 of the paper).

Quickstart::

    from repro import Graph500Runner
    report = Graph500Runner(scale=12, nodes=8).run(num_roots=4)
    print(report.summary())

Top-level names are imported lazily (PEP 562), so ``import repro`` stays
cheap and subsystems only load when touched.
"""

from repro.version import __version__
from repro.errors import (
    ReproError,
    SimulatedCrash,
    SpmOverflow,
    ConnectionMemoryExhausted,
    DeadlockError,
    ValidationError,
)

#: name -> (module, attribute) for lazily exposed public API.
_LAZY = {
    "CSRGraph": ("repro.graph.csr", "CSRGraph"),
    "KroneckerGenerator": ("repro.graph.kronecker", "KroneckerGenerator"),
    "Graph500Runner": ("repro.graph500.runner", "Graph500Runner"),
    "BFSConfig": ("repro.core.config", "BFSConfig"),
    "DistributedBFS": ("repro.core.bfs", "DistributedBFS"),
    "make_variant": ("repro.baselines", "make_variant"),
    "VARIANTS": ("repro.baselines", "VARIANTS"),
    "ScalingModel": ("repro.perf.scaling", "ScalingModel"),
}

__all__ = [
    "__version__",
    "ReproError",
    "SimulatedCrash",
    "SpmOverflow",
    "ConnectionMemoryExhausted",
    "DeadlockError",
    "ValidationError",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
