"""Query model: requests, canonical parameters, results.

A :class:`QueryRequest` names a catalog graph, an algorithm, and the
algorithm's parameters. Parameters are *canonicalised* before anything
else touches them — defaults filled, types normalised, unknown keys
rejected — so that two requests meaning the same computation produce the
same :func:`cache_key` regardless of spelling (``{"root": 5}`` and
``{"root": 5, "variant": "relay-cpe"}`` hit the same hot-root cache
line), and so the execution layer never sees a malformed parameter set.

Results carry the algorithm payload (numpy arrays included — the parity
suite pins them bit-identical to the batch paths) plus the service-side
accounting every response reports: status, cache hit, queue wait and
execute time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import ConfigError

#: Algorithms the service dispatches, with their parameter schemas:
#: ``name -> {param: (required, normaliser, default)}``.
_INT = int
_FLOAT = float
_STR = str

PARAM_SCHEMAS: dict[str, dict[str, tuple[bool, Any, Any]]] = {
    "bfs": {
        "root": (True, _INT, None),
        "variant": (False, _STR, "relay-cpe"),
    },
    "sssp": {
        "root": (True, _INT, None),
        "method": (False, _STR, "bellman-ford"),
        "max_weight": (False, _INT, 8),
        "delta": (False, _FLOAT, 2.0),
    },
    "pagerank": {
        "iterations": (False, _INT, 20),
        "tol": (False, _FLOAT, 0.0),
        "damping": (False, _FLOAT, 0.85),
    },
    "kcore": {
        "k": (True, _INT, None),
    },
    "wcc": {},
}

#: Statuses a finished query can report. ``shed`` is the 429-style
#: admission rejection (rate limit or full queue); ``timeout`` covers both
#: a deadline passing in the queue and one firing mid-execute.
STATUSES = ("ok", "shed", "timeout", "error")


def canonical_params(algo: str, params: Mapping[str, Any] | None) -> dict:
    """Validate and normalise ``params`` for ``algo``; defaults filled.

    Raises :class:`~repro.errors.ConfigError` for an unknown algorithm,
    an unknown parameter, a missing required parameter, or a value the
    parameter's type normaliser rejects.
    """
    schema = PARAM_SCHEMAS.get(algo)
    if schema is None:
        raise ConfigError(
            f"unknown algorithm {algo!r}; choose from {sorted(PARAM_SCHEMAS)}"
        )
    params = dict(params or {})
    out: dict[str, Any] = {}
    for key in sorted(schema):
        required, norm, default = schema[key]
        if key in params:
            raw = params.pop(key)
            try:
                out[key] = norm(raw)
            except (TypeError, ValueError):
                raise ConfigError(
                    f"bad value {raw!r} for {algo} parameter {key!r}"
                ) from None
        elif required:
            raise ConfigError(f"{algo} requires parameter {key!r}")
        else:
            out[key] = default
    if params:
        raise ConfigError(
            f"unknown {algo} parameter(s) {sorted(params)}; "
            f"known: {sorted(schema)}"
        )
    return out


def cache_key(graph: str, algo: str, params: Mapping[str, Any]) -> tuple:
    """Hashable hot-root cache key over canonicalised parameters."""
    return (graph, algo, tuple(sorted(params.items())))


@dataclass(frozen=True)
class QueryRequest:
    """One query against a catalog graph.

    ``params`` are canonicalised at construction; equal computations
    compare equal and share one :meth:`key`. ``timeout`` is a wall-clock
    deadline in seconds from submission (None = no deadline).
    """

    graph: str
    algo: str
    params: Mapping[str, Any] = field(default_factory=dict)
    tenant: str = "default"
    timeout: float | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "params", canonical_params(self.algo, self.params)
        )
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigError(f"timeout must be positive, got {self.timeout}")

    def key(self) -> tuple:
        return cache_key(self.graph, self.algo, self.params)


@dataclass
class QueryResult:
    """What the service returns for one request."""

    status: str
    graph: str
    algo: str
    tenant: str
    params: dict = field(default_factory=dict)
    #: Algorithm output: arrays (parent/dist/ranks/in_core/labels) plus
    #: scalars (levels, sim_seconds, supersteps, traversed_edges...).
    payload: dict = field(default_factory=dict)
    cached: bool = False
    error: str | None = None
    #: Wall-clock accounting (seconds): admission->dequeue, dequeue->done,
    #: and the whole submit->done span.
    queue_wait: float = 0.0
    execute_seconds: float = 0.0
    latency: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> dict:
        """Wire shape (arrays still raw; the protocol codec handles them)."""
        return {
            "status": self.status,
            "graph": self.graph,
            "algo": self.algo,
            "tenant": self.tenant,
            "params": dict(self.params),
            "payload": dict(self.payload),
            "cached": self.cached,
            "error": self.error,
            "queue_wait": self.queue_wait,
            "execute_seconds": self.execute_seconds,
            "latency": self.latency,
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "QueryResult":
        return cls(
            status=doc["status"],
            graph=doc["graph"],
            algo=doc["algo"],
            tenant=doc["tenant"],
            params=dict(doc.get("params", {})),
            payload=dict(doc.get("payload", {})),
            cached=bool(doc.get("cached", False)),
            error=doc.get("error"),
            queue_wait=float(doc.get("queue_wait", 0.0)),
            execute_seconds=float(doc.get("execute_seconds", 0.0)),
            latency=float(doc.get("latency", 0.0)),
        )
