"""Graph catalog: named, pre-built, pinned CSR graphs with lifecycle.

The batch harness rebuilds everything per invocation; a *service* keeps
graphs resident. A :class:`GraphCatalog` entry owns the three artifacts a
query needs — the raw edge list (TEPS accounting + validation), the
symmetrised deduplicated CSR (optionally rehosted zero-copy into shared
memory via :class:`~repro.graph.shm.SharedCSR`), and a set of constructed
kernels — built once at :meth:`~GraphCatalog.load` and reused by every
query until :meth:`~GraphCatalog.evict`.

Lifecycle is ref-counted: query execution holds a *pin* on the entry, an
evict of a pinned graph defers the actual release (shm teardown, kernel
drop) until the last pin falls, and eviction listeners fire immediately so
the result cache never serves a line of a graph the catalog no longer
vouches for.

This module is deliberately the **only** place in ``repro.service`` that
constructs kernels (``make_variant`` / superstep engines / runners) —
lint rule REP108 (service-kernel-bypass) enforces it. Everything else
routes through :meth:`CatalogEntry.execute` against a pinned entry, which
is what keeps query results bit-identical to the batch paths: same
generator, same shared-CSR construction, same kernel defaults.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.analysis.effects import effects
from repro.errors import ConfigError, ReproError
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.graph.kronecker import KroneckerGenerator
from repro.utils.tables import Table

if TYPE_CHECKING:
    from repro.graph.shm import SharedCSR
    from repro.telemetry.metrics import MetricsRegistry


@dataclass(frozen=True)
class GraphSpec:
    """How a catalog graph is generated and which machine serves it."""

    scale: int
    edge_factor: int = 16
    seed: int = 1
    nodes: int = 8
    nodes_per_super_node: int | None = None

    def __post_init__(self) -> None:
        if self.scale < 1:
            raise ConfigError(f"scale must be >= 1, got {self.scale}")
        if self.nodes < 1:
            raise ConfigError(f"nodes must be >= 1, got {self.nodes}")


class CatalogEntry:
    """One resident graph: artifacts, kernels, pins, counters."""

    def __init__(
        self,
        name: str,
        spec: GraphSpec,
        edges: EdgeList,
        graph: CSRGraph,
        shared: SharedCSR | None = None,
    ) -> None:
        self.name = name
        self.spec = spec
        self.edges = edges
        self.graph = graph
        #: The SharedCSR hosting ``graph``'s arrays, when shm hosting is on.
        self.shared = shared
        self.pins = 0
        self.evicted = False
        self.executes = 0
        #: BFS kernels are reusable across roots (``run(root)`` is
        #: history-independent — the parallel-roots parity matrix pins
        #: that), so they are cached per variant; each carries a lock
        #: because one kernel must not run two roots concurrently.
        self._bfs_kernels: dict[str, tuple[object, threading.Lock]] = {}
        self._kernel_lock = threading.Lock()

    # -- sizing -------------------------------------------------------------------
    def resident_bytes(self) -> int:
        return (
            self.edges.nbytes()
            + self.graph.row_ptr.nbytes
            + self.graph.col_idx.nbytes
        )

    # -- kernels ------------------------------------------------------------------
    @effects("locked:CatalogEntry._kernel_lock")
    def _bfs_kernel(self, variant: str) -> tuple[object, threading.Lock]:
        with self._kernel_lock:
            hit = self._bfs_kernels.get(variant)
            if hit is None:
                from repro.baselines import make_variant

                kernel = make_variant(
                    variant,
                    self.edges,
                    self.spec.nodes,
                    nodes_per_super_node=self.spec.nodes_per_super_node,
                    graph=self.graph,
                )
                hit = self._bfs_kernels[variant] = (kernel, threading.Lock())
            return hit

    def _superstep_kwargs(self) -> dict:
        return dict(
            nodes_per_super_node=self.spec.nodes_per_super_node,
            graph=self.graph,
        )

    # -- execution ----------------------------------------------------------------
    def execute(self, algo: str, params: dict) -> dict:
        """Run ``algo`` with canonicalised ``params``; returns the payload.

        Dispatches to the same kernels the batch paths use, against the
        pinned artifacts — the parity suite holds every payload array
        bit-identical to ``Graph500Runner`` / ``repro.algorithms``.
        """
        runner = getattr(self, f"_run_{algo}", None)
        if runner is None:
            raise ConfigError(f"unknown algorithm {algo!r}")
        if self.evicted:
            raise ConfigError(f"graph {self.name!r} has been evicted")
        payload = runner(params)
        self.executes += 1
        return payload

    def _run_bfs(self, params: dict) -> dict:
        root = params["root"]
        if not 0 <= root < self.graph.num_vertices:
            raise ConfigError(f"root {root} out of range")
        from repro.graph500.timing import traversed_edges

        kernel, lock = self._bfs_kernel(params["variant"])
        with lock:
            result = kernel.run(root)
        return {
            "parent": result.parent,
            "levels": result.levels,
            "sim_seconds": result.sim_seconds,
            "traversed_edges": traversed_edges(self.edges, result.depths()),
        }

    def _run_sssp(self, params: dict) -> dict:
        from repro.algorithms import DistributedDeltaStepping, DistributedSSSP

        method = params["method"]
        if method == "bellman-ford":
            algo = DistributedSSSP(
                self.edges,
                self.spec.nodes,
                max_weight=params["max_weight"],
                **self._superstep_kwargs(),
            )
        elif method == "delta-stepping":
            algo = DistributedDeltaStepping(
                self.edges,
                self.spec.nodes,
                delta=params["delta"],
                max_weight=params["max_weight"],
                **self._superstep_kwargs(),
            )
        else:
            raise ConfigError(
                f"sssp method must be bellman-ford/delta-stepping, "
                f"got {method!r}"
            )
        result = algo.run(params["root"])
        return {
            "dist": result.dist,
            "supersteps": result.supersteps,
            "sim_seconds": result.sim_seconds,
        }

    def _run_pagerank(self, params: dict) -> dict:
        from repro.algorithms import DistributedPageRank

        algo = DistributedPageRank(
            self.edges,
            self.spec.nodes,
            damping=params["damping"],
            **self._superstep_kwargs(),
        )
        result = algo.run(iterations=params["iterations"], tol=params["tol"])
        return {
            "ranks": result.ranks,
            "supersteps": result.supersteps,
            "sim_seconds": result.sim_seconds,
        }

    def _run_kcore(self, params: dict) -> dict:
        from repro.algorithms import DistributedKCore

        algo = DistributedKCore(
            self.edges, self.spec.nodes, **self._superstep_kwargs()
        )
        result = algo.run(params["k"])
        return {
            "in_core": result.in_core,
            "core_size": result.core_size(),
            "supersteps": result.supersteps,
            "sim_seconds": result.sim_seconds,
        }

    def _run_wcc(self, params: dict) -> dict:
        from repro.algorithms import DistributedWCC

        algo = DistributedWCC(
            self.edges, self.spec.nodes, **self._superstep_kwargs()
        )
        result = algo.run()
        return {
            "labels": result.labels,
            "num_components": result.num_components(),
            "supersteps": result.supersteps,
            "sim_seconds": result.sim_seconds,
        }

    # -- teardown -----------------------------------------------------------------
    @effects("locked:CatalogEntry._kernel_lock")
    def _release(self) -> None:
        """Drop kernels and unhost the shm segment (last pin is gone)."""
        with self._kernel_lock:
            self._bfs_kernels.clear()
        if self.shared is not None:
            self.shared.destroy()
            self.shared = None


class GraphCatalog:
    """Named resident graphs with load/pin/evict lifecycle."""

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        host_shared: bool = True,
    ) -> None:
        self._entries: dict[str, CatalogEntry] = {}
        self._lock = threading.Lock()
        self._eviction_listeners: list[Callable[[str], None]] = []
        self.metrics = metrics
        #: Rehost loaded CSRs into POSIX shared memory when available so
        #: worker processes (and anything else on the box) can map the
        #: edge arrays zero-copy.
        self.host_shared = host_shared

    # -- lifecycle ---------------------------------------------------------------
    def load(
        self,
        name: str,
        spec: GraphSpec,
        edges: EdgeList | None = None,
    ) -> CatalogEntry:
        """Build and pin graph ``name`` (idempotent only by explicit evict).

        ``edges`` optionally supplies a pre-generated list (tests, file
        loads); by default the entry generates the Kronecker list from
        ``spec`` — the same generator path as ``Graph500Runner``, so a
        service query and a batch run over equal specs see equal graphs.
        """
        if not name:
            raise ConfigError("graph name must be non-empty")
        with self._lock:
            if name in self._entries:
                raise ConfigError(f"graph {name!r} is already loaded")
        if edges is None:
            edges = KroneckerGenerator(
                spec.scale, spec.edge_factor, seed=spec.seed
            ).generate()
        graph = CSRGraph.from_edges(edges)
        shared = None
        if self.host_shared:
            from repro.graph.shm import SharedCSR, shared_memory_available

            if shared_memory_available():
                shared = SharedCSR.host(graph)
                graph = shared.graph
        entry = CatalogEntry(name, spec, edges, graph, shared=shared)
        with self._lock:
            if name in self._entries:  # lost a load race; fold ours away
                entry._release()
                raise ConfigError(f"graph {name!r} is already loaded")
            self._entries[name] = entry
        if self.metrics is not None:
            self.metrics.counter("service_catalog_loads").add()
        return entry

    def get(self, name: str) -> CatalogEntry:
        with self._lock:
            entry = self._entries.get(name)
        if entry is None:
            raise ConfigError(f"unknown graph {name!r}; load it first")
        return entry

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    @contextmanager
    def pin(self, name: str) -> Iterator[CatalogEntry]:
        """Hold ``name``'s entry against release for the with-block.

        Pins taken before an evict stay valid for their whole block (the
        artifacts outlive the catalog's name binding); the release runs
        when the last pin drops.
        """
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                raise ConfigError(f"unknown graph {name!r}; load it first")
            entry.pins += 1
        try:
            yield entry
        finally:
            with self._lock:
                entry.pins -= 1
                release = entry.evicted and entry.pins == 0
            if release:
                entry._release()

    def add_eviction_listener(self, callback: Callable[[str], None]) -> None:
        """``callback(name)`` fires inside :meth:`evict`, before release."""
        self._eviction_listeners.append(callback)

    def evict(self, name: str) -> dict:
        """Unbind ``name`` and release its artifacts (deferred past pins).

        Returns a small accounting dict: whether the release happened
        immediately and how many pins are still holding the artifacts.
        """
        with self._lock:
            entry = self._entries.pop(name, None)
            if entry is None:
                raise ConfigError(f"unknown graph {name!r}")
            entry.evicted = True
            pins = entry.pins
        for callback in list(self._eviction_listeners):
            callback(name)
        if pins == 0:
            entry._release()
        if self.metrics is not None:
            self.metrics.counter("service_catalog_evictions").add()
        return {"released": pins == 0, "pins": pins}

    def close(self) -> None:
        """Evict everything (shutdown path)."""
        for name in self.names():
            try:
                self.evict(name)
            except ReproError:  # pragma: no cover - already-gone race
                pass

    # -- introspection -----------------------------------------------------------
    def stats(self) -> list[dict]:
        with self._lock:
            entries = list(self._entries.values())
        rows = []
        for e in sorted(entries, key=lambda e: e.name):
            rows.append(
                {
                    "name": e.name,
                    "scale": e.spec.scale,
                    "edge_factor": e.spec.edge_factor,
                    "seed": e.spec.seed,
                    "nodes": e.spec.nodes,
                    "vertices": e.graph.num_vertices,
                    "edges": int(e.edges.num_edges),
                    "resident_bytes": e.resident_bytes(),
                    "shared_memory": e.shared is not None,
                    "pins": e.pins,
                    "executes": e.executes,
                }
            )
        return rows

    def stats_table(self) -> str:
        t = Table(
            ["graph", "scale", "nodes", "vertices", "edges", "MiB",
             "shm", "pins", "executes"],
            title="graph catalog",
        )
        for row in self.stats():
            t.add_row(
                [
                    row["name"],
                    row["scale"],
                    row["nodes"],
                    f"{row['vertices']:,}",
                    f"{row['edges']:,}",
                    f"{row['resident_bytes'] / 2**20:.1f}",
                    "yes" if row["shared_memory"] else "no",
                    row["pins"],
                    f"{row['executes']:,}",
                ]
            )
        return t.render()


def sample_hot_roots(entry: CatalogEntry, count: int, seed: int = 1) -> np.ndarray:
    """The benchmark-style root sample for a catalog graph (the natural
    hot set for a traversal service: the spec's 64 roots)."""
    from repro.graph500.roots import sample_roots

    return sample_roots(entry.edges, count, seed=seed)
