"""Hot-root result cache: LRU over ``(graph, algo, canonical params)``.

The paper's workload — 64 roots queried against one resident graph — is
exactly the shape a result cache wants: a small hot set of
``(graph, algo, root)`` keys asked over and over. Entries are whole
:class:`~repro.service.query.QueryResult` payloads (the arrays are
treated as immutable once published; nothing in the service mutates a
returned payload), so a hit costs one dict lookup and a move-to-front.

Catalog eviction invalidates every line of the evicted graph — a pinned
CSR going away must take its derived results with it, or a reloaded graph
under the same name (different seed, different scale) would serve stale
answers. The scan is O(cache size), which is bounded and small next to a
graph eviction.

Thread-safety: one lock around every operation. Hit/miss/insert/evict/
invalidate counters feed the per-tenant report through the service's
metrics registry; the cache itself keeps plain integers so it is usable
standalone.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.analysis.effects import effects
from repro.errors import ConfigError


class ResultCache:
    """Bounded LRU keyed by :func:`repro.service.query.cache_key`."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ConfigError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lines: OrderedDict[tuple, object] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.inserts = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._lines)

    @effects("locked:ResultCache._lock")
    def get(self, key: tuple) -> object | None:
        """The cached payload for ``key`` (marked most-recent), or None."""
        with self._lock:
            value = self._lines.get(key)
            if value is None:
                self.misses += 1
                return None
            self._lines.move_to_end(key)
            self.hits += 1
            return value

    @effects("locked:ResultCache._lock")
    def put(self, key: tuple, value: object) -> None:
        """Insert/refresh a line, evicting the least-recent past capacity."""
        with self._lock:
            if key in self._lines:
                self._lines.move_to_end(key)
            self._lines[key] = value
            self.inserts += 1
            while len(self._lines) > self.capacity:
                self._lines.popitem(last=False)
                self.evictions += 1

    def invalidate_graph(self, graph: str) -> int:
        """Drop every line of ``graph`` (cache keys lead with the graph
        name); returns how many lines went away."""
        with self._lock:
            doomed = [k for k in self._lines if k[0] == graph]
            for k in doomed:
                del self._lines[k]
            self.invalidations += len(doomed)
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self.invalidations += len(self._lines)
            self._lines.clear()

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        with self._lock:
            return {
                "size": len(self._lines),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "inserts": self.inserts,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "hit_rate": self.hit_rate(),
            }
