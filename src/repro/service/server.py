"""Asyncio socket frontend for :class:`~repro.service.service.GraphService`.

One long-lived TCP listener; each connection is a sequence of
length-prefixed JSON frames (see :mod:`repro.service.protocol`), one
request frame → one response frame, pipelining allowed. The event loop
only parses frames and shuttles work — execution happens on the service's
worker pool via ``run_in_executor``-free future bridging
(:func:`asyncio.wrap_future` over the service's ``concurrent`` future), so
a slow BFS never blocks an admission check on another connection.

Ops:

- ``query``: graph/algo/params/tenant/timeout → a QueryResult document.
  By default the bulky payload arrays are included; ``"arrays": false``
  strips them (latency probes, load generators).
- ``load`` / ``evict``: catalog lifecycle.
- ``stats``: machine-readable per-tenant + cache + catalog numbers.
- ``report``: the rendered human table (what ``repro serve --report``
  prints server-side).
- ``ping``: liveness.
"""

from __future__ import annotations

import asyncio
from collections.abc import Callable

from repro.errors import ProtocolError, ReproError
from repro.service.catalog import GraphSpec
from repro.service.protocol import (
    HEADER,
    decode_body,
    encode_frame,
    read_frame_length,
)
from repro.service.query import QueryRequest
from repro.service.scheduler import TenantConfig
from repro.service.service import GraphService

#: Payload keys that are large arrays, strippable with ``"arrays": false``.
_ARRAY_KEYS = ("parent", "dist", "ranks", "in_core", "labels")


class ServiceServer:
    """TCP frontend bound to one :class:`GraphService`."""

    def __init__(
        self, service: GraphService, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    # -- lifecycle ---------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        # Port 0 binds an ephemeral port; surface the real one.
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    # -- connection handling ------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    header = await reader.readexactly(HEADER.size)
                except asyncio.IncompleteReadError:
                    return  # clean or mid-header EOF: connection is done
                try:
                    body = await reader.readexactly(read_frame_length(header))
                    request = decode_body(body)
                    response = await self._dispatch(request)
                except asyncio.IncompleteReadError:
                    return
                except ProtocolError as exc:
                    response = {"ok": False, "error": str(exc)}
                writer.write(encode_frame(response))
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) else None
        if handler is None:
            return {"ok": False, "error": f"unknown op {op!r}"}
        try:
            return await handler(request)
        except ReproError as exc:
            return {"ok": False, "error": str(exc)}

    # -- ops ----------------------------------------------------------------------
    async def _op_ping(self, request: dict) -> dict:
        return {"ok": True, "graphs": self.service.catalog.names()}

    async def _op_query(self, request: dict) -> dict:
        query = QueryRequest(
            graph=request.get("graph", ""),
            algo=request.get("algo", ""),
            params=request.get("params") or {},
            tenant=request.get("tenant", "default"),
            timeout=request.get("timeout"),
        )
        future = self.service.submit(query)
        result = await asyncio.wrap_future(future)
        doc = result.to_dict()
        if request.get("arrays", True) is False:
            for key in _ARRAY_KEYS:
                doc["payload"].pop(key, None)
        doc["ok"] = True
        return doc

    async def _op_load(self, request: dict) -> dict:
        spec = GraphSpec(
            scale=int(request.get("scale", 0)),
            edge_factor=int(request.get("edge_factor", 16)),
            seed=int(request.get("seed", 1)),
            nodes=int(request.get("nodes", 8)),
            nodes_per_super_node=request.get("nodes_per_super_node"),
        )
        loop = asyncio.get_running_loop()
        entry = await loop.run_in_executor(
            None, self.service.load_graph, request.get("graph", ""), spec
        )
        return {
            "ok": True,
            "graph": entry.name,
            "vertices": entry.graph.num_vertices,
            "edges": int(entry.edges.num_edges),
            "shared_memory": entry.shared is not None,
        }

    async def _op_evict(self, request: dict) -> dict:
        outcome = self.service.evict_graph(request.get("graph", ""))
        return {"ok": True, **outcome}

    async def _op_configure_tenant(self, request: dict) -> dict:
        config = TenantConfig(
            rate=request.get("rate"),
            burst=float(request.get("burst", 64.0)),
            weight=float(request.get("weight", 1.0)),
            max_queue_depth=int(request.get("max_queue_depth", 256)),
        )
        self.service.configure_tenant(request.get("tenant", "default"), config)
        return {"ok": True}

    async def _op_stats(self, request: dict) -> dict:
        tenants = sorted(
            set(self.service.scheduler.tenants())
            | set(self.service._seen_tenants())
        )
        return {
            "ok": True,
            "tenants": {t: self.service.tenant_stats(t) for t in tenants},
            "cache": (
                self.service.cache.stats()
                if self.service.cache is not None
                else None
            ),
            "catalog": self.service.catalog.stats(),
        }

    async def _op_report(self, request: dict) -> dict:
        return {"ok": True, "report": self.service.report()}


async def run_server(
    service: GraphService,
    host: str = "127.0.0.1",
    port: int = 0,
    ready_callback: Callable[["ServiceServer"], None] | None = None,
) -> None:
    """Start a :class:`ServiceServer` and serve until cancelled."""
    server = ServiceServer(service, host=host, port=port)
    await server.start()
    if ready_callback is not None:
        ready_callback(server)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()
