"""The multi-tenant graph query service.

:class:`GraphService` composes the pieces of this package into one
long-lived object:

- a :class:`~repro.service.catalog.GraphCatalog` of resident graphs,
- a :class:`~repro.service.cache.ResultCache` in front of execution
  (hot-root hits skip admission entirely — a cache hit costs microseconds
  and starves nobody, so rate-limiting it would only burn tokens the
  tenant needs for real work),
- a :class:`~repro.service.scheduler.FairScheduler` feeding a small pool
  of worker threads,
- a :class:`~repro.telemetry.MetricsRegistry` recording per-tenant
  latency/queue-wait/execute histograms and status counters.

Submission is asynchronous (:meth:`GraphService.submit` returns a
``concurrent.futures.Future``); :meth:`GraphService.query` is the
synchronous convenience the CLI and the parity tests use. Every path —
shed, queue-timeout, execute-timeout, error, hit, miss — resolves the
future with a :class:`~repro.service.query.QueryResult`; futures never
carry exceptions, so a caller handles one shape.

Timeout semantics: the deadline is checked when a query reaches the head
of its queue (expired → ``timeout`` without executing) and again after
execution (the worker cannot preempt a running kernel, so a late finish
reports ``timeout`` to the caller — but the payload it validly computed
still fills the cache for the next asker).
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ConfigError, ReproError
from repro.service.cache import ResultCache
from repro.service.catalog import CatalogEntry, GraphCatalog, GraphSpec

if TYPE_CHECKING:
    from repro.graph.edgelist import EdgeList
from repro.service.query import QueryRequest, QueryResult
from repro.service.scheduler import (
    QUEUED,
    SHED_QUEUE,
    SHED_RATE,
    FairScheduler,
    TenantConfig,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.utils.tables import Table

#: Latency-ish histogram buckets (seconds): µs cache hits up to multi-
#: second stragglers.
LATENCY_BUCKETS = (
    1e-6, 1e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2,
    5e-2, 1e-1, 2.5e-1, 5e-1, 1.0, 2.5, 5.0, 10.0, float("inf"),
)


@dataclass(frozen=True)
class ServiceConfig:
    """Service-wide knobs (per-tenant QoS lives in :class:`TenantConfig`)."""

    workers: int = 2
    cache_capacity: int = 1024  #: 0 disables the result cache
    quantum: float = 1.0
    default_tenant: TenantConfig = field(default_factory=TenantConfig)
    default_timeout: float | None = None
    host_shared: bool = True

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.cache_capacity < 0:
            raise ConfigError(
                f"cache_capacity must be >= 0, got {self.cache_capacity}"
            )
        if self.default_timeout is not None and self.default_timeout <= 0:
            raise ConfigError(
                f"default_timeout must be positive, got {self.default_timeout}"
            )


class _Pending:
    """A queued query: the request, its future, and its clock marks."""

    __slots__ = ("request", "future", "submitted", "deadline")

    def __init__(
        self,
        request: QueryRequest,
        future: Future,
        submitted: float,
        deadline: float | None,
    ) -> None:
        self.request = request
        self.future = future
        self.submitted = submitted
        self.deadline = deadline


class GraphService:
    """Catalog + cache + fair scheduler + worker pool, as one object."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        metrics: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or ServiceConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._clock = clock
        self.catalog = GraphCatalog(
            metrics=self.metrics, host_shared=self.config.host_shared
        )
        self.cache = (
            ResultCache(self.config.cache_capacity)
            if self.config.cache_capacity > 0
            else None
        )
        # Evicting a graph must take its derived results with it — the name
        # may be reloaded with a different spec.
        if self.cache is not None:
            self.catalog.add_eviction_listener(self.cache.invalidate_graph)
        self.scheduler = FairScheduler(
            quantum=self.config.quantum,
            default_config=self.config.default_tenant,
            clock=clock,
        )
        self._closed = False
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"svc-worker-{i}", daemon=True
            )
            for i in range(self.config.workers)
        ]
        for t in self._workers:
            t.start()

    # -- catalog passthroughs ----------------------------------------------------
    def load_graph(
        self, name: str, spec: GraphSpec, edges: EdgeList | None = None
    ) -> CatalogEntry:
        return self.catalog.load(name, spec, edges=edges)

    def evict_graph(self, name: str) -> dict:
        return self.catalog.evict(name)

    def configure_tenant(self, name: str, config: TenantConfig) -> None:
        self.scheduler.configure_tenant(name, config)

    # -- submission --------------------------------------------------------------
    def submit(self, request: QueryRequest) -> Future:
        """Admit-or-shed ``request``; the future always resolves to a
        :class:`QueryResult` (sheds resolve immediately)."""
        if self._closed:
            raise ConfigError("service is closed")
        now = self._clock()
        future: Future = Future()
        self.metrics.counter("service_submitted", tenant=request.tenant).add()
        if self.cache is not None:
            payload = self.cache.get(request.key())
            if payload is not None:
                result = self._base_result(request, "ok")
                result.payload = payload
                result.cached = True
                result.latency = self._clock() - now
                self._record(result)
                future.set_result(result)
                return future
        timeout = (
            request.timeout
            if request.timeout is not None
            else self.config.default_timeout
        )
        deadline = now + timeout if timeout is not None else None
        pending = _Pending(request, future, now, deadline)
        status = self.scheduler.offer(request.tenant, pending)
        if status in (SHED_RATE, SHED_QUEUE):
            result = self._base_result(request, "shed")
            result.error = (
                "rate limit exceeded"
                if status == SHED_RATE
                else "tenant queue full"
            )
            result.latency = self._clock() - now
            self._record(result)
            future.set_result(result)
        else:
            assert status == QUEUED
        return future

    def query(self, request: QueryRequest) -> QueryResult:
        """Synchronous :meth:`submit`; blocks until the result."""
        return self.submit(request).result()

    # -- execution ---------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            pending = self.scheduler.take()
            if pending is None:  # closed and drained
                return
            try:
                result = self._process(pending)
            except BaseException as exc:  # pragma: no cover - defensive
                result = self._base_result(pending.request, "error")
                result.error = f"{type(exc).__name__}: {exc}"
            self._record(result)
            pending.future.set_result(result)

    def _process(self, pending: _Pending) -> QueryResult:
        request = pending.request
        started = self._clock()
        result = self._base_result(request, "ok")
        result.queue_wait = started - pending.submitted
        if pending.deadline is not None and started > pending.deadline:
            result.status = "timeout"
            result.error = "deadline passed while queued"
            result.latency = self._clock() - pending.submitted
            return result
        key = request.key()
        if self.cache is not None:
            payload = self.cache.get(key)
            if payload is not None:
                result.payload = payload
                result.cached = True
                result.latency = self._clock() - pending.submitted
                return result
        try:
            with self.catalog.pin(request.graph) as entry:
                payload = entry.execute(request.algo, request.params)
        except (ReproError, ValueError) as exc:
            result.status = "error"
            result.error = str(exc)
            result.execute_seconds = self._clock() - started
            result.latency = self._clock() - pending.submitted
            return result
        done = self._clock()
        result.payload = payload
        result.execute_seconds = done - started
        result.latency = done - pending.submitted
        if self.cache is not None:
            # Cache fills even on a late finish: the payload is valid, only
            # this caller's deadline was missed.
            self.cache.put(key, payload)
        if pending.deadline is not None and done > pending.deadline:
            result.status = "timeout"
            result.error = "deadline passed during execution"
        return result

    # -- accounting --------------------------------------------------------------
    def _base_result(self, request: QueryRequest, status: str) -> QueryResult:
        return QueryResult(
            status=status,
            graph=request.graph,
            algo=request.algo,
            tenant=request.tenant,
            params=dict(request.params),
        )

    def _record(self, result: QueryResult) -> None:
        m = self.metrics
        tenant = result.tenant
        m.counter("service_queries", tenant=tenant, status=result.status).add()
        if result.cached:
            m.counter("service_cache_hits", tenant=tenant).add()
        if result.status == "shed":
            return
        m.histogram(
            "service_latency_seconds", buckets=LATENCY_BUCKETS, tenant=tenant
        ).observe(result.latency)
        m.histogram(
            "service_queue_wait_seconds", buckets=LATENCY_BUCKETS, tenant=tenant
        ).observe(result.queue_wait)
        m.histogram(
            "service_execute_seconds", buckets=LATENCY_BUCKETS, tenant=tenant
        ).observe(result.execute_seconds)

    # -- lifecycle ---------------------------------------------------------------
    def close(self, evict: bool = True) -> None:
        """Drain the queues, stop the workers, optionally evict the
        catalog. Idempotent."""
        if self._closed:
            return
        self._closed = True
        self.scheduler.close()
        for t in self._workers:
            t.join()
        if evict:
            self.catalog.close()

    def __enter__(self) -> "GraphService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- reporting ---------------------------------------------------------------
    def tenant_stats(self, tenant: str) -> dict:
        """One tenant's service-side numbers (merged scheduler + telemetry)."""
        m = self.metrics
        row = {"tenant": tenant}
        for status in ("ok", "shed", "timeout", "error"):
            row[status] = int(
                m.value("service_queries", tenant=tenant, status=status)
            )
        row["cache_hits"] = int(m.value("service_cache_hits", tenant=tenant))
        latency = m.histogram(
            "service_latency_seconds", buckets=LATENCY_BUCKETS, tenant=tenant
        )
        queue_wait = m.histogram(
            "service_queue_wait_seconds", buckets=LATENCY_BUCKETS, tenant=tenant
        )
        execute = m.histogram(
            "service_execute_seconds", buckets=LATENCY_BUCKETS, tenant=tenant
        )
        row["queries"] = latency.count
        row["p50_seconds"] = latency.quantile(0.5)
        row["p99_seconds"] = latency.quantile(0.99)
        row["mean_queue_wait"] = queue_wait.mean()
        row["mean_execute"] = execute.mean()
        row.update(
            {f"sched_{k}": v for k, v in self.scheduler.stats(tenant).items()}
        )
        return row

    def report(self) -> str:
        """Human summary: per-tenant table + cache + catalog."""
        tenants = sorted(
            set(self.scheduler.tenants())
            | {
                t
                for t in self._seen_tenants()
            }
        )
        table = Table(
            ["tenant", "queries", "ok", "shed", "timeout", "error",
             "hits", "p50 ms", "p99 ms", "wait ms", "exec ms"],
            title="per-tenant service report",
        )
        for tenant in tenants:
            row = self.tenant_stats(tenant)
            table.add_row(
                [
                    tenant,
                    row["queries"] + row["shed"],
                    row["ok"],
                    row["shed"],
                    row["timeout"],
                    row["error"],
                    row["cache_hits"],
                    f"{row['p50_seconds'] * 1e3:.3f}",
                    f"{row['p99_seconds'] * 1e3:.3f}",
                    f"{row['mean_queue_wait'] * 1e3:.3f}",
                    f"{row['mean_execute'] * 1e3:.3f}",
                ]
            )
        parts = [table.render()]
        if self.cache is not None:
            s = self.cache.stats()
            parts.append(
                f"cache: {s['size']}/{s['capacity']} lines, "
                f"{s['hits']} hits / {s['misses']} misses "
                f"(rate {s['hit_rate']:.2%}), "
                f"{s['invalidations']} invalidated"
            )
        parts.append(self.catalog.stats_table())
        return "\n\n".join(parts)

    def _seen_tenants(self) -> list[str]:
        """Tenants with recorded queries (sheds included) even if the
        scheduler never queued them (pure cache-hit tenants)."""
        family = self.metrics.families().get("service_submitted")
        if family is None:
            return []
        out = set()
        fam = self.metrics._families["service_submitted"]
        for values in fam.children:
            out.add(values[0])
        return sorted(out)
