"""Admission control and fair queueing for the query service.

Three mechanisms, composed in submission order:

1. **Token-bucket admission** per tenant: a tenant may burst up to
   ``burst`` queries and sustain ``rate`` queries/second; past that the
   query is *shed* at the door (429-style) rather than queued — the
   service protects its latency by refusing work it cannot serve in time.
2. **Bounded queues**: even an admitted query is shed if the tenant's
   queue is at depth; an unbounded queue just converts overload into
   unbounded latency.
3. **Deficit-round-robin dispatch** across tenants: each visit to a
   tenant's queue adds ``quantum x weight`` to its deficit and serves
   queries while the deficit covers their cost. With unit costs and equal
   weights this degenerates to exact round-robin — a tenant offering 10x
   the load of its peers still gets only its fair share of service, which
   is precisely the fairness property the load benchmark pins.

The scheduler is wall-clock based (it runs in the *harness*, not on the
simulated machine — no REP101 concern out here) but takes an injectable
``clock`` so the edge-case tests advance time deterministically.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass

from repro.errors import ConfigError

#: ``offer`` outcomes.
QUEUED = "queued"
SHED_RATE = "shed_rate"
SHED_QUEUE = "shed_queue"


class TokenBucket:
    """Classic token bucket; ``rate=None`` admits everything."""

    def __init__(
        self,
        rate: float | None,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate is not None and rate <= 0:
            raise ConfigError(f"rate must be positive or None, got {rate}")
        if burst < 1:
            raise ConfigError(f"burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = float(burst)
        self.tokens = float(burst)
        self._clock = clock
        self._last = clock()

    def try_take(self, cost: float = 1.0) -> bool:
        """Spend ``cost`` tokens if available; refills lazily from the
        elapsed clock. A bucket at exactly ``cost`` tokens admits — the
        burst capacity is inclusive."""
        if self.rate is None:
            return True
        now = self._clock()
        if now > self._last:
            self.tokens = min(
                self.burst, self.tokens + (now - self._last) * self.rate
            )
            self._last = now
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False


@dataclass(frozen=True)
class TenantConfig:
    """Per-tenant QoS knobs (see docs/service.md)."""

    rate: float | None = None  #: sustained queries/sec (None = unlimited)
    burst: float = 64.0  #: token-bucket capacity
    weight: float = 1.0  #: DRR share relative to other tenants
    max_queue_depth: int = 256  #: admitted-but-waiting cap

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigError(f"weight must be positive, got {self.weight}")
        if self.max_queue_depth < 1:
            raise ConfigError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )


class _TenantState:
    __slots__ = (
        "name", "config", "bucket", "queue", "deficit", "visit_credited",
        "admitted", "shed_rate", "shed_queue", "served", "peak_depth",
    )

    def __init__(
        self, name: str, config: TenantConfig, clock: Callable[[], float]
    ) -> None:
        self.name = name
        self.config = config
        self.bucket = TokenBucket(config.rate, config.burst, clock)
        self.queue: deque = deque()  # (item, cost)
        self.deficit = 0.0
        self.visit_credited = False
        self.admitted = 0
        self.shed_rate = 0
        self.shed_queue = 0
        self.served = 0
        self.peak_depth = 0


class FairScheduler:
    """Token-bucket admission + deficit-round-robin tenant queues."""

    def __init__(
        self,
        quantum: float = 1.0,
        default_config: TenantConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if quantum <= 0:
            raise ConfigError(f"quantum must be positive, got {quantum}")
        self.quantum = quantum
        self.default_config = default_config or TenantConfig()
        self._clock = clock
        self._tenants: dict[str, _TenantState] = {}
        #: Ring of tenant names with non-empty queues, in DRR visit order.
        self._ring: deque[str] = deque()
        self._pending = 0
        self._closed = False
        self._cv = threading.Condition()

    # -- configuration ---------------------------------------------------------
    def configure_tenant(self, name: str, config: TenantConfig) -> None:
        """Install (or replace) a tenant's QoS config. Replacing resets the
        token bucket but keeps queued work and counters."""
        with self._cv:
            state = self._tenants.get(name)
            if state is None:
                self._tenants[name] = _TenantState(name, config, self._clock)
            else:
                state.config = config
                state.bucket = TokenBucket(config.rate, config.burst, self._clock)

    def _state(self, name: str) -> _TenantState:
        state = self._tenants.get(name)
        if state is None:
            state = self._tenants[name] = _TenantState(
                name, self.default_config, self._clock
            )
        return state

    # -- submission ------------------------------------------------------------
    def offer(self, tenant: str, item: object, cost: float = 1.0) -> str:
        """Admit-or-shed ``item``; returns QUEUED / SHED_RATE / SHED_QUEUE."""
        with self._cv:
            state = self._state(tenant)
            if self._closed:
                raise ConfigError("scheduler is closed")
            if not state.bucket.try_take(cost):
                state.shed_rate += 1
                return SHED_RATE
            if len(state.queue) >= state.config.max_queue_depth:
                state.shed_queue += 1
                return SHED_QUEUE
            state.queue.append((item, cost))
            state.admitted += 1
            if len(state.queue) > state.peak_depth:
                state.peak_depth = len(state.queue)
            if len(state.queue) == 1:
                self._ring.append(tenant)
            self._pending += 1
            self._cv.notify()
            return QUEUED

    # -- dispatch ----------------------------------------------------------------
    def take(self, timeout: float | None = None) -> object | None:
        """Next item in DRR order, or None on timeout / after :meth:`close`.

        One call serves one item; a tenant's deficit carries across calls,
        so a weight-2 tenant is handed two consecutive items per ring
        visit before the ring rotates on.
        """
        with self._cv:
            while self._pending == 0:
                if self._closed:
                    return None
                if not self._cv.wait(timeout):
                    return None
            while True:
                name = self._ring[0]
                state = self._tenants[name]
                if not state.visit_credited:
                    state.deficit += self.quantum * state.config.weight
                    state.visit_credited = True
                item, cost = state.queue[0]
                if state.deficit >= cost:
                    state.queue.popleft()
                    state.deficit -= cost
                    state.served += 1
                    self._pending -= 1
                    if not state.queue:
                        # An idle tenant's leftover deficit does not bank:
                        # DRR resets it so a returning tenant can't burst
                        # past its share on stale credit.
                        state.deficit = 0.0
                        state.visit_credited = False
                        self._ring.popleft()
                    return item
                # Visit over — rotate; the next visit credits a fresh
                # quantum, so this loop strictly increases some deficit
                # and terminates (quantum and weights are positive).
                state.visit_credited = False
                self._ring.rotate(-1)

    def close(self) -> None:
        """Stop admitting; wake every blocked :meth:`take` (returns None
        once drained)."""
        with self._cv:
            self._closed = True
            self._cv.notify_all()

    # -- introspection -----------------------------------------------------------
    def depth(self, tenant: str | None = None) -> int:
        with self._cv:
            if tenant is not None:
                state = self._tenants.get(tenant)
                return len(state.queue) if state else 0
            return self._pending

    def tenants(self) -> list[str]:
        with self._cv:
            return sorted(self._tenants)

    def stats(self, tenant: str) -> dict:
        with self._cv:
            state = self._tenants.get(tenant)
            if state is None:
                return {}
            return {
                "admitted": state.admitted,
                "served": state.served,
                "shed_rate": state.shed_rate,
                "shed_queue": state.shed_queue,
                "depth": len(state.queue),
                "peak_depth": state.peak_depth,
                "weight": state.config.weight,
            }
