"""Wire protocol: length-prefixed JSON frames with a numpy array codec.

Frames are ``4-byte big-endian length || UTF-8 JSON body``. JSON keeps the
protocol inspectable (``repro query`` output is the decoded body) and
dependency-free; the one thing JSON cannot carry — the result arrays
(parents, distances, ranks) — rides as a tagged base64 object::

    {"__ndarray__": "<base64 of tobytes()>", "dtype": "int64", "shape": [8192]}

Round-tripping is exact: ``tobytes``/``frombuffer`` preserve every bit, so
the over-socket parity tests can require results identical to in-process
execution, not merely close.

Request body shape (the client helper builds it)::

    {"op": "query", "graph": ..., "algo": ..., "params": {...},
     "tenant": ..., "timeout": ...}

Other ops: ``load`` / ``evict`` / ``stats`` / ``report`` / ``ping``.
Responses always carry ``"ok": true/false``; failures add ``"error"``.
"""

from __future__ import annotations

import base64
import json
import socket
import struct

import numpy as np

from repro.errors import ProtocolError

#: Frame header: unsigned 32-bit big-endian body length.
HEADER = struct.Struct(">I")

#: Refuse absurd frames before allocating for them (64 MiB covers a
#: scale-22 parent array with base64 overhead several times over).
MAX_FRAME_BYTES = 64 * 2**20

_NDARRAY_TAG = "__ndarray__"


def _encode_default(obj: object) -> object:
    if isinstance(obj, np.ndarray):
        return {
            _NDARRAY_TAG: base64.b64encode(obj.tobytes()).decode("ascii"),
            "dtype": str(obj.dtype),
            "shape": list(obj.shape),
        }
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.bool_):
        return bool(obj)
    raise TypeError(f"cannot encode {type(obj).__name__} on the wire")


def _decode_hook(doc: dict) -> object:
    if _NDARRAY_TAG in doc:
        try:
            raw = base64.b64decode(doc[_NDARRAY_TAG])
            arr = np.frombuffer(raw, dtype=np.dtype(doc["dtype"]))
            return arr.reshape(doc["shape"]).copy()  # writable, owned
        except (KeyError, ValueError, TypeError) as exc:
            raise ProtocolError(f"malformed array on the wire: {exc}") from None
    return doc


def encode_frame(doc: dict) -> bytes:
    """``doc`` → header+body bytes ready for one ``write``."""
    body = json.dumps(
        doc, default=_encode_default, separators=(",", ":")
    ).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES} cap"
        )
    return HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> dict:
    """Body bytes → dict (arrays rehydrated)."""
    try:
        doc = json.loads(body.decode("utf-8"), object_hook=_decode_hook)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from None
    if not isinstance(doc, dict):
        raise ProtocolError(f"frame body must be an object, got {type(doc).__name__}")
    return doc


def read_frame_length(header: bytes) -> int:
    """Header bytes → validated body length."""
    if len(header) != HEADER.size:
        raise ProtocolError(f"truncated frame header ({len(header)} bytes)")
    (length,) = HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES} cap"
        )
    return length


def recv_frame(sock: socket.socket) -> dict | None:
    """Read one frame from a blocking socket; None on clean EOF."""
    header = _recv_exact(sock, HEADER.size)
    if header is None:
        return None
    body = _recv_exact(sock, read_frame_length(header))
    if body is None:
        raise ProtocolError("connection closed mid-frame")
    return decode_body(body)


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Exactly ``n`` bytes, or None on EOF before the first byte."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if not chunks:
                return None
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
