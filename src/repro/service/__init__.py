"""Long-lived multi-tenant graph query service.

The batch harness (:mod:`repro.graph500`) answers "how fast is one BFS
sweep"; this package answers "what does the machine look like *hosting*
traversal as a service" — resident graphs, concurrent tenants, admission
control, fairness, caching, per-tenant telemetry. See docs/service.md for
the architecture and the wire protocol.

Layering (lint rule REP108 keeps it honest): only
:mod:`repro.service.catalog` constructs kernels; everything else goes
through a pinned :class:`~repro.service.catalog.CatalogEntry`.
"""

from repro.service.cache import ResultCache
from repro.service.catalog import CatalogEntry, GraphCatalog, GraphSpec
from repro.service.client import ServiceClient, ServiceError
from repro.service.query import (
    PARAM_SCHEMAS,
    QueryRequest,
    QueryResult,
    cache_key,
    canonical_params,
)
from repro.service.scheduler import (
    QUEUED,
    SHED_QUEUE,
    SHED_RATE,
    FairScheduler,
    TenantConfig,
    TokenBucket,
)
from repro.service.server import ServiceServer, run_server
from repro.service.service import GraphService, ServiceConfig

__all__ = [
    "PARAM_SCHEMAS",
    "QUEUED",
    "SHED_QUEUE",
    "SHED_RATE",
    "CatalogEntry",
    "FairScheduler",
    "GraphCatalog",
    "GraphService",
    "GraphSpec",
    "QueryRequest",
    "QueryResult",
    "ResultCache",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceServer",
    "TenantConfig",
    "TokenBucket",
    "cache_key",
    "canonical_params",
    "run_server",
]
