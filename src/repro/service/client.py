"""Blocking socket client for the service frontend.

The counterpart of :mod:`repro.service.server`, used by ``repro query``,
the load benchmark, and the over-socket parity tests. One
:class:`ServiceClient` wraps one TCP connection; requests are serialised
on a lock, so a client object is safe to share across threads (each
request occupies the connection until its response frame arrives — run
several clients for concurrency, they are cheap).
"""

from __future__ import annotations

import socket
import threading

from repro.errors import ProtocolError, ReproError
from repro.service.protocol import encode_frame, recv_frame
from repro.service.query import QueryResult


class ServiceError(ReproError, RuntimeError):
    """The server answered ``ok: false``."""


class ServiceClient:
    """One connection to a :class:`~repro.service.server.ServiceServer`."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, timeout: float | None = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._lock = threading.Lock()

    # -- plumbing -----------------------------------------------------------------
    def call(self, request: dict) -> dict:
        """One request frame → the response document; raises
        :class:`ServiceError` on an ``ok: false`` answer."""
        with self._lock:
            self._sock.sendall(encode_frame(request))
            response = recv_frame(self._sock)
        if response is None:
            raise ProtocolError("server closed the connection")
        if not response.get("ok", False):
            raise ServiceError(response.get("error", "unknown server error"))
        return response

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- ops ----------------------------------------------------------------------
    def ping(self) -> dict:
        return self.call({"op": "ping"})

    def query(
        self,
        graph: str,
        algo: str,
        params: dict | None = None,
        tenant: str = "default",
        timeout: float | None = None,
        arrays: bool = True,
    ) -> QueryResult:
        doc = self.call(
            {
                "op": "query",
                "graph": graph,
                "algo": algo,
                "params": params or {},
                "tenant": tenant,
                "timeout": timeout,
                "arrays": arrays,
            }
        )
        return QueryResult.from_dict(doc)

    def load(
        self,
        graph: str,
        scale: int,
        edge_factor: int = 16,
        seed: int = 1,
        nodes: int = 8,
        nodes_per_super_node: int | None = None,
    ) -> dict:
        return self.call(
            {
                "op": "load",
                "graph": graph,
                "scale": scale,
                "edge_factor": edge_factor,
                "seed": seed,
                "nodes": nodes,
                "nodes_per_super_node": nodes_per_super_node,
            }
        )

    def evict(self, graph: str) -> dict:
        return self.call({"op": "evict", "graph": graph})

    def configure_tenant(
        self,
        tenant: str,
        rate: float | None = None,
        burst: float = 64.0,
        weight: float = 1.0,
        max_queue_depth: int = 256,
    ) -> dict:
        return self.call(
            {
                "op": "configure_tenant",
                "tenant": tenant,
                "rate": rate,
                "burst": burst,
                "weight": weight,
                "max_queue_depth": max_queue_depth,
            }
        )

    def stats(self) -> dict:
        return self.call({"op": "stats"})

    def report(self) -> str:
        return self.call({"op": "report"})["report"]
