"""Rule framework for the determinism lint (:mod:`repro.sanitizers`).

The harness rests on bit-exact reproducibility claims — batched == scalar
message paths, worker-count-invariant telemetry, seed-replayable faults —
that a single stray wall-clock read or unordered ``set`` iteration silently
voids. Each hazard class is a :class:`Rule` with a stable id; the AST pass
in :mod:`repro.sanitizers.determinism` emits :class:`Finding` objects that
render as human text or JSON and honour per-line suppressions::

    peers = set(a) | set(b)  # repro: noqa[REP104]

A bare ``# repro: noqa`` suppresses every rule on its line.

Scopes keep the lint honest about where determinism is load-bearing:
``sim-core`` rules apply only inside the simulator packages
(``repro.core``, ``repro.sim``, ``repro.machine``, ``repro.network``)
where iteration order escapes into message and event order; ``repro``
rules apply to the whole tree.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field

#: Packages where container order escapes into simulated message/event
#: order — the blast radius of a nondeterministic iteration.
SIM_CORE_PACKAGES = ("core", "sim", "machine", "network")

#: Files exempt from specific rules (the one sanctioned RNG entry point,
#: and the partitioned engine's own lane implementation).
RULE_EXEMPT_FILES = {
    "REP102": ("repro/sim/rng.py",),
    "REP106": ("repro/sim/partition.py",),
    # partition.py owns the journal-merge replay (it IS the journal API);
    # faults.py installs transport interposers by design, and the parallel
    # drain scheduler detects interposers and falls back to serial.
    "REP107": ("repro/sim/partition.py", "repro/sim/faults.py"),
    # The catalog is the service's one sanctioned kernel-construction
    # site: entries own their kernels and the execute dispatch.
    "REP108": ("repro/service/catalog.py",),
}

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9,\s]+)\])?", re.IGNORECASE
)


@dataclass(frozen=True)
class Rule:
    """One lint rule: a stable id, a scope, and what it forbids."""

    id: str
    name: str
    summary: str
    scope: str  # "sim-core" or "repro"


RULES: dict[str, Rule] = {
    r.id: r
    for r in (
        Rule(
            "REP101",
            "wall-clock-read",
            "wall-clock reads (time.time/perf_counter/datetime.now) inside "
            "sim-core modules; simulated time must come from the engine",
            "sim-core",
        ),
        Rule(
            "REP102",
            "global-rng",
            "random / numpy.random use outside repro.sim.rng.substream; "
            "every stochastic draw must come from a named seeded substream",
            "repro",
        ),
        Rule(
            "REP103",
            "unordered-iteration",
            "iteration over a set/frozenset expression (or list()/tuple()/"
            "enumerate() of one) whose order can escape into message or "
            "event order; wrap in sorted() or dedup with dict.fromkeys",
            "sim-core",
        ),
        Rule(
            "REP104",
            "unsorted-set-union",
            "set-union expressions (set(a) | set(b), set(a).union(b)) feeding "
            "downstream consumers; build a deterministic sequence instead "
            "(sorted union or dict.fromkeys merge)",
            "sim-core",
        ),
        Rule(
            "REP105",
            "missing-slots",
            "hot message/event dataclasses (*Message, *Event, *Packet, "
            "*Execution) without slots=True; per-instance dicts cost space "
            "and invite untracked dynamic attributes",
            "sim-core",
        ),
        Rule(
            "REP106",
            "pdes-channel-bypass",
            "direct access to the partitioned engine's cross-partition state "
            "(_lanes/_entries/_drain_bound/_node_partition) outside "
            "repro.sim.partition; cross-partition events must flow through "
            "the engine's scheduling/channel API, not shared mutable lanes",
            "sim-core",
        ),
        Rule(
            "REP107",
            "journal-bypass-mutation",
            "attribute store through a shared engine/cluster handle "
            "(x.engine.attr = / x.cluster.attr += ...); compute-lane "
            "callbacks race under parallel drain unless shared-state "
            "mutation goes through the drain journal API (engine.journal "
            "fold_max/fold_add, journal-aware metrics) or the engine's "
            "scheduling API",
            "sim-core",
        ),
        Rule(
            "REP108",
            "service-kernel-bypass",
            "direct kernel construction (Graph500Runner / make_variant / "
            "DistributedBFS / superstep algorithms) inside repro.service "
            "outside the catalog module; queries must execute through a "
            "pinned CatalogEntry so lifecycle, caching, and parity hold",
            "service",
        ),
        Rule(
            "REP109",
            "bare-lock-acquire",
            "bare lock.acquire() outside a with-statement or an "
            "acquire/try/finally-release idiom; an exception between "
            "acquire and release leaks the lock and deadlocks the next "
            "taker — use 'with lock:' (or release in a finally)",
            "repro",
        ),
    )
}


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "name": RULES[self.rule].name if self.rule in RULES else "",
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class LintReport:
    """Findings plus enough context to gate CI on them."""

    findings: list[Finding] = field(default_factory=list)
    checked_files: int = 0
    suppressed: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.rule] = out.get(f.rule, 0) + 1
        return out

    def render_text(self) -> str:
        lines = [f.render() for f in self.findings]
        lines.append(
            f"{len(self.findings)} finding(s) in {self.checked_files} file(s)"
            f" ({self.suppressed} suppressed)"
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "ok": self.ok,
                "checked_files": self.checked_files,
                "suppressed": self.suppressed,
                "counts": self.counts(),
                "findings": [f.to_dict() for f in self.findings],
            },
            indent=2,
        )

    def to_sarif(self) -> str:
        """SARIF 2.1.0 rendering (GitHub code scanning ingestion); shares
        the exporter with ``repro analyze``."""
        from repro.sanitizers.sarif import sarif_document

        return sarif_document(
            tool_name="repro-lint",
            rules=[
                {"id": r.id, "name": r.name, "summary": r.summary}
                for r in RULES.values()
            ],
            results=[
                {
                    "rule": f.rule,
                    "path": f.path.replace("\\", "/"),
                    "line": f.line,
                    "col": f.col,
                    "message": f.message,
                }
                for f in self.findings
            ],
        )


def parse_noqa(line: str) -> frozenset[str] | None:
    """Suppressions on one source line.

    Returns ``None`` when there is no directive, an empty frozenset for a
    blanket ``# repro: noqa``, or the set of uppercased rule ids for
    ``# repro: noqa[REP103,REP104]``.
    """
    m = _NOQA_RE.search(line)
    if m is None:
        return None
    rules = m.group("rules")
    if rules is None:
        return frozenset()
    return frozenset(r.strip().upper() for r in rules.split(",") if r.strip())


def is_suppressed(finding: Finding, source_lines: list[str]) -> bool:
    """Whether the finding's source line carries a matching noqa."""
    if not 1 <= finding.line <= len(source_lines):
        return False
    suppressions = parse_noqa(source_lines[finding.line - 1])
    if suppressions is None:
        return False
    return not suppressions or finding.rule in suppressions


def path_scope(path: str) -> str:
    """Lint scope of a file: ``sim-core`` or ``repro``.

    Scope comes from the path's position under the ``repro`` package;
    files outside it (fixtures, scripts) default to the broad scope.
    """
    parts = path.replace("\\", "/").split("/")
    if "repro" in parts:
        idx = len(parts) - 1 - parts[::-1].index("repro")
        if idx + 1 < len(parts) and parts[idx + 1] in SIM_CORE_PACKAGES:
            return "sim-core"
    return "repro"


def rule_applies(rule: Rule, path: str, scope: str) -> bool:
    """Whether ``rule`` is live for a file, given its resolved scope."""
    norm = path.replace("\\", "/")
    for suffix in RULE_EXEMPT_FILES.get(rule.id, ()):
        if norm.endswith(suffix):
            return False
    if rule.scope == "repro":
        return True
    if rule.scope == "service":
        # Layering rules live where the layer does, independent of the
        # sim-core/repro scope split.
        return "repro/service/" in norm or scope == "service"
    return scope == "sim-core"
