"""Static prover for register-mesh shuffle schedules.

The paper (Section 4.3, Figure 6) claims the producer/router/consumer
shuffle is *contention-free and deadlock-free by construction*: records
move east along rows to a router column, strictly north in the up column
or strictly south in the down column, then east again to a consumer whose
SPM staging buffers and main-memory output regions are disjoint. This
module turns that prose into machine-checked properties over a
:class:`~repro.core.shuffle.ShufflePlan`:

- **role partition** — producers, routers and consumers tile the mesh
  with no overlap;
- **row-then-column discipline** — every route is E-hops, at most one
  vertical hop confined to a router column with that column's fixed
  polarity (up column strictly N, down column strictly S), then E-hops;
- **channel-dependency acyclicity** — the Dally & Seitz test over the
  full route set (no circular wait ⇒ no deadlock);
- **port-conflict freedom** — in an explicit phase-by-phase
  :class:`MeshSchedule`, no CPE issues two sends or accepts two receives
  in the same phase, and each route's hops occupy strictly increasing
  phases;
- **SPM feasibility** — per-destination staging claims fit the 64 KB SPM
  after the reserved control region.

``prove_plan`` runs all of them and returns a :class:`ProofReport`; the
CI gate and the unit tests assert the paper schedule passes and seeded
bad schedules (cyclic routes, double-claimed ports, oversized staging)
are rejected with named violations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.shuffle import ShufflePlan
from repro.errors import ConfigError, DeadlockError, SpmOverflow
from repro.machine.mesh import MeshTopology, Route, check_deadlock_free
from repro.machine.spm import check_staging_layout

Pos = tuple[int, int]


@dataclass(frozen=True)
class Transfer:
    """One register move ``src -> dst`` placed in one schedule phase."""

    src: Pos
    dst: Pos


@dataclass
class MeshSchedule:
    """An explicit phase-by-phase register-transfer schedule.

    ``phases[p]`` lists the transfers that fire simultaneously in phase
    ``p``; the prover checks them for port conflicts. ``route_phases``
    maps each route to the phase index of each of its hops so hop
    ordering can be verified.
    """

    phases: list[list[Transfer]] = field(default_factory=list)
    route_phases: list[tuple[Route, list[int]]] = field(default_factory=list)

    def add_route(self, route: Route, mesh: MeshTopology) -> None:
        """Greedy earliest-phase placement with per-phase port exclusivity.

        Each hop lands in the earliest phase strictly after its
        predecessor where neither its send port nor its receive port is
        taken — the scheduler the real shuffle's round-robin
        time-multiplexing approximates. The result is conflict-free by
        construction; :func:`prove_schedule` re-verifies it from scratch
        so hand-built (possibly broken) schedules get the same scrutiny.
        """
        phase_idx = -1
        hop_phases: list[int] = []
        for a, b in zip(route.stops, route.stops[1:]):
            p = phase_idx + 1
            while True:
                while len(self.phases) <= p:
                    self.phases.append([])
                busy_send = any(t.src == a for t in self.phases[p])
                busy_recv = any(t.dst == b for t in self.phases[p])
                if not busy_send and not busy_recv:
                    break
                p += 1
            self.phases[p].append(Transfer(a, b))
            hop_phases.append(p)
            phase_idx = p
        self.route_phases.append((route, hop_phases))


@dataclass(frozen=True)
class Violation:
    """One failed property: a stable code plus a human explanation."""

    code: str  # ROLE_OVERLAP / ILLEGAL_CHANNEL / DIRECTION / HOP_ORDER /
    #           PORT_CONFLICT / CYCLE / SPM_OVERFLOW
    message: str


@dataclass
class ProofReport:
    """Outcome of proving one plan/schedule."""

    checks: dict[str, bool] = field(default_factory=dict)
    violations: list[Violation] = field(default_factory=list)
    routes: int = 0
    phases: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        lines = [
            f"mesh proof over {self.routes} route(s), {self.phases} phase(s):"
        ]
        for name in sorted(self.checks):
            lines.append(f"  {'PASS' if self.checks[name] else 'FAIL'} {name}")
        for v in self.violations:
            lines.append(f"  {v.code}: {v.message}")
        return "\n".join(lines)

    def _fail(self, check: str, code: str, message: str) -> None:
        self.checks[check] = False
        self.violations.append(Violation(code, message))


def _check_roles(plan: ShufflePlan, report: ProofReport) -> None:
    """Producers/routers/consumers partition the mesh."""
    roles = plan.roles
    mesh_positions = [
        (r, c) for r in range(roles.mesh_rows) for c in range(roles.mesh_cols)
    ]
    producers = roles.producer_positions()
    up_col, down_col = roles.router_columns()
    routers = [
        (r, c) for r in range(roles.mesh_rows) for c in (up_col, down_col)
    ]
    consumers = roles.consumer_positions()
    assigned = producers + routers + consumers
    report.checks["role-partition"] = True
    seen: dict[Pos, int] = {}
    for pos in assigned:
        seen[pos] = seen.get(pos, 0) + 1
        if seen[pos] == 2:
            report._fail(
                "role-partition",
                "ROLE_OVERLAP",
                f"position {pos} is assigned to more than one role",
            )
    if len(seen) != len(mesh_positions):
        missing = sorted(set(mesh_positions) - set(seen))[:4]
        report._fail(
            "role-partition",
            "ROLE_OVERLAP",
            f"roles do not cover the mesh; first uncovered: {missing}",
        )


def _check_directions(
    plan: ShufflePlan, routes: list[Route], mesh: MeshTopology, report: ProofReport
) -> None:
    """Row-then-column shape plus per-router-column polarity."""
    up_col, down_col = plan.roles.router_columns()
    report.checks["direction-discipline"] = True
    for route in routes:
        dirs = []
        try:
            for a, b in zip(route.stops, route.stops[1:]):
                dirs.append(mesh.direction(a, b))
        except Exception as exc:  # illegal hop: not same row/column
            report._fail(
                "direction-discipline", "ILLEGAL_CHANNEL", str(exc)
            )
            continue
        vertical = [i for i, d in enumerate(dirs) if d in ("N", "S")]
        if len(vertical) > 1:
            report._fail(
                "direction-discipline",
                "DIRECTION",
                f"route {route.stops} takes {len(vertical)} vertical hops; "
                "the shuffle allows at most one",
            )
            continue
        if any(d == "W" for d in dirs):
            report._fail(
                "direction-discipline",
                "DIRECTION",
                f"route {route.stops} moves west; rows are strictly "
                "eastbound (producers -> routers -> consumers)",
            )
            continue
        if vertical:
            i = vertical[0]
            src_col = route.stops[i][1]
            if src_col not in (up_col, down_col):
                report._fail(
                    "direction-discipline",
                    "DIRECTION",
                    f"route {route.stops} moves vertically in column "
                    f"{src_col}, which is not a router column",
                )
            elif dirs[i] == "S" and src_col == up_col:
                report._fail(
                    "direction-discipline",
                    "DIRECTION",
                    f"route {route.stops} moves south in the up column "
                    f"{up_col}; polarity violation can close a cycle",
                )
            elif dirs[i] == "N" and src_col == down_col:
                report._fail(
                    "direction-discipline",
                    "DIRECTION",
                    f"route {route.stops} moves north in the down column "
                    f"{down_col}; polarity violation can close a cycle",
                )


def _check_acyclic(
    routes: list[Route], mesh: MeshTopology, report: ProofReport
) -> None:
    """Channel-dependency-graph acyclicity (no circular wait)."""
    report.checks["channel-acyclicity"] = True
    try:
        ok = check_deadlock_free(routes, mesh, raise_on_cycle=True)
    except DeadlockError as exc:
        report._fail("channel-acyclicity", "CYCLE", str(exc))
        return
    except ConfigError as exc:
        # An illegal hop has no channel; the dependency graph is undefined.
        report._fail("channel-acyclicity", "ILLEGAL_CHANNEL", str(exc))
        return
    if not ok:  # pragma: no cover - raise_on_cycle covers this
        report._fail("channel-acyclicity", "CYCLE", "cycle detected")


def prove_schedule(
    schedule: MeshSchedule, mesh: MeshTopology | None = None
) -> ProofReport:
    """Verify an explicit schedule: legality, port exclusivity, hop order.

    Works on hand-built schedules too — nothing here trusts how the
    schedule was produced.
    """
    mesh = mesh or MeshTopology()
    report = ProofReport(
        routes=len(schedule.route_phases), phases=len(schedule.phases)
    )
    report.checks["channel-legality"] = True
    report.checks["port-exclusivity"] = True
    report.checks["hop-ordering"] = True
    for p, transfers in enumerate(schedule.phases):
        send_ports: dict[Pos, Transfer] = {}
        recv_ports: dict[Pos, Transfer] = {}
        for t in transfers:
            if not mesh.channel_allowed(t.src, t.dst):
                report._fail(
                    "channel-legality",
                    "ILLEGAL_CHANNEL",
                    f"phase {p}: {t.src} -> {t.dst} is not a same-row/"
                    "same-column register channel",
                )
            if t.src in send_ports:
                report._fail(
                    "port-exclusivity",
                    "PORT_CONFLICT",
                    f"phase {p}: CPE {t.src} issues two sends "
                    f"({send_ports[t.src].dst} and {t.dst})",
                )
            send_ports[t.src] = t
            if t.dst in recv_ports:
                report._fail(
                    "port-exclusivity",
                    "PORT_CONFLICT",
                    f"phase {p}: CPE {t.dst} accepts two receives "
                    f"(from {recv_ports[t.dst].src} and {t.src})",
                )
            recv_ports[t.dst] = t
    for route, hop_phases in schedule.route_phases:
        if any(b <= a for a, b in zip(hop_phases, hop_phases[1:])):
            report._fail(
                "hop-ordering",
                "HOP_ORDER",
                f"route {route.stops} hops are not in strictly increasing "
                f"phases: {hop_phases}",
            )
    _check_acyclic(
        [route for route, _ in schedule.route_phases], mesh, report
    )
    return report


def schedule_from_plan(
    plan: ShufflePlan, mesh: MeshTopology | None = None
) -> MeshSchedule:
    """The canonical time-multiplexed schedule for a plan's route set."""
    mesh = mesh or MeshTopology(plan.roles.mesh_rows, plan.roles.mesh_cols)
    schedule = MeshSchedule()
    for route in plan.all_routes():
        schedule.add_route(route, mesh)
    return schedule


def prove_plan(
    plan: ShufflePlan, mesh: MeshTopology | None = None
) -> ProofReport:
    """Prove every Section 4.3 property of one shuffle plan.

    Structural checks run over the full route set; the port-conflict
    check runs over the canonical schedule; SPM feasibility re-validates
    the staging layout (so a plan whose constructor was bypassed still
    gets caught).
    """
    mesh = mesh or MeshTopology(plan.roles.mesh_rows, plan.roles.mesh_cols)
    routes = plan.all_routes()
    schedule = schedule_from_plan(plan, mesh)
    report = prove_schedule(schedule, mesh)
    report.routes = len(routes)
    _check_roles(plan, report)
    _check_directions(plan, routes, mesh, report)
    report.checks["spm-feasibility"] = True
    try:
        check_staging_layout(
            num_buffers=plan.buffers_per_consumer,
            buffer_bytes=plan.staging_buffer_bytes,
            spm_bytes=plan.spm_bytes,
            reserved_bytes=plan.spm_reserved_bytes,
            owner="consumer CPE",
        )
    except SpmOverflow as exc:
        report._fail("spm-feasibility", "SPM_OVERFLOW", str(exc))
    return report
