"""repro.sanitizers — static analysis + runtime sanitizers.

The determinism and contention-freedom claims the harness rests on,
turned into machine-checked properties:

- :mod:`~repro.sanitizers.determinism` — AST lint (``repro lint``) over
  the simulator sources: wall-clock reads, global RNG, hash-order
  iteration, unsorted set unions, slot-less hot dataclasses, PDES
  channel bypasses, journal-bypassing shared-state mutation,
  service-layer kernel-construction bypasses, bare lock acquires
  (rule ids REP101-REP109, ``# repro: noqa[RULE]`` suppressions);
- :mod:`~repro.sanitizers.mesh_prover` — static prover for the Section
  4.3 register-mesh shuffle: role partition, row-then-column direction
  discipline, channel-dependency acyclicity, per-phase port exclusivity
  and SPM feasibility;
- :mod:`~repro.sanitizers.runtime` — opt-in runtime detectors: SPM
  write conflicts, message-mutated-after-send, and the double-run
  determinism diff behind ``repro sanitize``.

See ``docs/static-analysis.md`` for the full rule catalogue and CI
wiring.
"""

from __future__ import annotations

from repro.sanitizers.determinism import (
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.sanitizers.mesh_prover import (
    MeshSchedule,
    ProofReport,
    Transfer,
    Violation,
    prove_plan,
    prove_schedule,
    schedule_from_plan,
)
from repro.sanitizers.rules import RULES, Finding, LintReport, Rule
from repro.sanitizers.sarif import sarif_document
from repro.sanitizers.runtime import (
    DeterminismReport,
    MessageSanitizer,
    SanitizerViolation,
    SpmWriteSanitizer,
    check_determinism,
    payload_digest,
    run_digest,
)

__all__ = [
    "RULES",
    "Rule",
    "Finding",
    "LintReport",
    "lint_source",
    "lint_file",
    "lint_paths",
    "iter_python_files",
    "sarif_document",
    "MeshSchedule",
    "Transfer",
    "ProofReport",
    "Violation",
    "prove_plan",
    "prove_schedule",
    "schedule_from_plan",
    "SpmWriteSanitizer",
    "MessageSanitizer",
    "SanitizerViolation",
    "DeterminismReport",
    "check_determinism",
    "payload_digest",
    "run_digest",
]
