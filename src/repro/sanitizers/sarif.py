"""Shared SARIF 2.1.0 exporter for ``repro lint`` and ``repro analyze``.

SARIF (Static Analysis Results Interchange Format) is what GitHub code
scanning ingests; emitting it lets both gates annotate pull requests
instead of only failing them. One run object per invocation, one
``result`` per finding, rule metadata carried in the driver so the UI
can show the catalogue summary next to each annotation.

The document is deterministic: rules and results are emitted in the
order given (callers pass sorted findings), and no timestamps or
absolute paths are included — the byte-identical double-run test covers
the analyzer's SARIF output too.
"""

from __future__ import annotations

import json

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def sarif_document(
    tool_name: str,
    rules: list[dict[str, str]],
    results: list[dict[str, object]],
) -> str:
    """Render findings as a SARIF JSON string.

    ``rules``: ``{"id", "name", "summary"}`` dicts (the catalogue).
    ``results``: ``{"rule", "path", "line", "col", "message"}`` dicts.
    """
    rule_index = {r["id"]: i for i, r in enumerate(rules)}
    driver = {
        "name": tool_name,
        "informationUri": "https://example.invalid/repro/docs/static-analysis",
        "rules": [
            {
                "id": r["id"],
                "name": r["name"],
                "shortDescription": {"text": r["name"]},
                "fullDescription": {"text": r["summary"]},
                "defaultConfiguration": {"level": "error"},
            }
            for r in rules
        ],
    }
    sarif_results = []
    for finding in results:
        rule_id = str(finding["rule"])
        result = {
            "ruleId": rule_id,
            "level": "error",
            "message": {"text": str(finding["message"])},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": str(finding["path"]).replace("\\", "/"),
                        },
                        "region": {
                            "startLine": int(finding["line"]),  # type: ignore[call-overload]
                            "startColumn": max(1, int(finding["col"])),  # type: ignore[call-overload]
                        },
                    }
                }
            ],
        }
        if rule_id in rule_index:
            result["ruleIndex"] = rule_index[rule_id]
        sarif_results.append(result)
    doc = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {"driver": driver},
                "results": sarif_results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }
    return json.dumps(doc, indent=2)
