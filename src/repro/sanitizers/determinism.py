"""AST determinism lint over the simulator sources.

Static enforcement of the invariants the parity tests pin dynamically:
no wall-clock reads in simulated time, no global RNG, no container
iteration whose order depends on hash seeding, no unsorted set unions
feeding downstream consumers, and ``slots`` on hot message dataclasses.

The pass is a single :class:`ast.NodeVisitor` walk per file — no type
inference, so it only flags *syntactic* hazards (a ``set()`` call it can
see, not a variable that happens to hold a set). That keeps it fast and
false-positive-light; the runtime sanitizers in
:mod:`repro.sanitizers.runtime` catch what escapes the syntax.
"""

from __future__ import annotations

import ast
import os
from collections.abc import Iterable, Iterator

from repro.sanitizers.rules import (
    RULES,
    Finding,
    LintReport,
    is_suppressed,
    path_scope,
    rule_applies,
)

#: ``time`` module functions that read the host clock.
_WALL_CLOCK_FNS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "clock_gettime",
        "clock_gettime_ns",
    }
)
#: ``datetime`` constructors that read the host clock.
_DATETIME_FNS = frozenset({"now", "utcnow", "today"})
#: Wrappers whose iteration order mirrors their argument's order.
_ITER_WRAPPERS = frozenset({"list", "tuple", "enumerate", "iter"})
#: Order-insensitive consumers: a set argument here is deterministic.
_ORDER_SAFE_WRAPPERS = frozenset({"sorted", "len", "sum", "any", "all", "bool"})
#: Set methods that return another unordered set.
_SET_COMBINATORS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)
#: Dataclass name suffixes that mark a hot per-message/per-event type.
_HOT_SUFFIXES = ("Message", "Event", "Packet", "Execution")
#: The partitioned engine's cross-partition state (repro.sim.partition).
#: Touching these outside that module bypasses the channel API — lane heaps
#: and the drain bound are exactly the shared mutable state conservative
#: sync exists to fence.
_PDES_PRIVATE_ATTRS = frozenset(
    {"_lanes", "_entries", "_drain_bound", "_node_partition"}
)
#: Kernel entry points (REP108): inside ``repro.service`` only the
#: catalog module may call these — everything else executes through a
#: pinned CatalogEntry, which is what keeps graph lifecycle, kernel
#: reuse, and batch/service parity in one place.
_KERNEL_CONSTRUCTORS = frozenset(
    {
        "Graph500Runner",
        "DistributedBFS",
        "make_variant",
        "SuperstepEngine",
        "DistributedSSSP",
        "DistributedDeltaStepping",
        "DistributedPageRank",
        "DistributedWCC",
        "DistributedKCore",
    }
)
#: Handle names that reach state shared across compute lanes. A store
#: through one of them (``x.engine.attr = ...``) mutates engine/cluster
#: state that parallel drain workers would race on; such mutations must
#: go through the drain journal (fold_max/fold_add, journal-aware
#: metrics) or the engine's scheduling API instead.
_SHARED_HANDLES = frozenset({"engine", "cluster"})


def _dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _flatten_store_targets(target: ast.AST) -> Iterator[ast.AST]:
    """Leaf store targets of an assignment (unpacks tuple/list targets)."""
    if isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _flatten_store_targets(elt)
    else:
        yield target


def _store_shared_handle(target: ast.AST) -> str | None:
    """The ``engine``/``cluster`` handle a store target routes through.

    ``self.engine.attr = ...`` and ``cluster.attr[i] += ...`` both route a
    mutation through a shared handle; ``engine = ...`` (rebinding the name
    itself) and ``self.attr = ...`` do not.
    """
    node = target
    while isinstance(node, (ast.Subscript, ast.Starred)):
        node = node.value
    if not isinstance(node, ast.Attribute):
        return None
    node = node.value
    while isinstance(node, ast.Attribute):
        if node.attr in _SHARED_HANDLES:
            return node.attr
        node = node.value
    if isinstance(node, ast.Name) and node.id in _SHARED_HANDLES:
        return node.id
    return None


def _is_set_expr(node: ast.AST) -> bool:
    """Whether the expression syntactically produces an unordered set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SET_COMBINATORS
            and _is_set_expr(node.func.value)
        ):
            return True
    return False


class _LintVisitor(ast.NodeVisitor):
    """One file's walk; collects findings before suppression filtering."""

    def __init__(self, path: str, scope: str) -> None:
        self.path = path
        self.scope = scope
        self.findings: list[Finding] = []
        #: Names bound by ``from time import perf_counter``-style imports.
        self._clock_aliases: dict[str, str] = {}
        #: Names bound by ``from random import ...`` / numpy.random imports.
        self._rng_aliases: dict[str, str] = {}

    # -- plumbing --------------------------------------------------------------
    def _emit(self, rule_id: str, node: ast.AST, message: str) -> None:
        if not rule_applies(RULES[rule_id], self.path, self.scope):
            return
        self.findings.append(
            Finding(
                rule=rule_id,
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
            )
        )

    # -- imports feeding REP101/REP102 ----------------------------------------
    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if module == "time":
            for alias in node.names:
                if alias.name in _WALL_CLOCK_FNS:
                    self._clock_aliases[alias.asname or alias.name] = (
                        f"time.{alias.name}"
                    )
        elif module == "random" or module.startswith("numpy.random"):
            for alias in node.names:
                bound = alias.asname or alias.name
                self._rng_aliases[bound] = f"{module}.{alias.name}"
                self._emit(
                    "REP102",
                    node,
                    f"import of global RNG symbol {module}.{alias.name}; "
                    "derive draws from repro.sim.rng.substream",
                )
        self.generic_visit(node)

    # -- calls: clocks, RNG, unordered wrappers --------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if dotted is not None:
            self._check_clock_call(node, dotted)
            self._check_rng_call(node, dotted)
            callee = dotted.rpartition(".")[2]
            if callee in _KERNEL_CONSTRUCTORS:
                self._emit(
                    "REP108",
                    node,
                    f"kernel construction {callee}() inside repro.service: "
                    "only the catalog builds kernels; execute queries "
                    "through a pinned CatalogEntry",
                )
        if isinstance(node.func, ast.Name):
            name = node.func.id
            if name in _ITER_WRAPPERS and node.args and _is_set_expr(node.args[0]):
                self._emit(
                    "REP103",
                    node.args[0],
                    f"{name}() over a set expression: iteration order depends "
                    "on hash seeding; wrap the set in sorted() first",
                )
        self.generic_visit(node)

    def _check_clock_call(self, node: ast.Call, dotted: str) -> None:
        root, _, rest = dotted.partition(".")
        hit = None
        if root == "time" and rest in _WALL_CLOCK_FNS:
            hit = dotted
        elif dotted in self._clock_aliases:
            hit = self._clock_aliases[dotted]
        elif rest.rpartition(".")[2] in _DATETIME_FNS and "datetime" in dotted:
            hit = dotted
        if hit is not None:
            self._emit(
                "REP101",
                node,
                f"wall-clock read {hit}(): simulated components must take "
                "time from the engine, not the host clock",
            )

    def _check_rng_call(self, node: ast.Call, dotted: str) -> None:
        root, _, rest = dotted.partition(".")
        hit = None
        if root == "random" and rest:
            hit = dotted
        elif root in ("np", "numpy") and rest.startswith("random."):
            hit = dotted
        elif dotted in self._rng_aliases:
            hit = self._rng_aliases[dotted]
        if hit is not None:
            self._emit(
                "REP102",
                node,
                f"global RNG call {hit}(): every stochastic draw must come "
                "from a named repro.sim.rng.substream generator",
            )

    # -- iteration order: for / comprehensions / unpacking ---------------------
    def _check_iterable(self, node: ast.AST) -> None:
        if _is_set_expr(node):
            self._emit(
                "REP103",
                node,
                "iteration over a set expression: order depends on hash "
                "seeding and escapes into downstream order; use sorted() "
                "or dict.fromkeys",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def visit_Starred(self, node: ast.Starred) -> None:
        if not isinstance(node.value, (ast.Set, ast.SetComp)):
            # *set(...) spreads in hash order; a {*a, *b} set display is
            # itself a set expression and is judged where it is consumed.
            self._check_iterable(node.value)
        self.generic_visit(node)

    # -- set unions (REP104) ----------------------------------------------------
    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, ast.BitOr) and (
            _is_set_expr(node.left) or _is_set_expr(node.right)
        ):
            self._emit(
                "REP104",
                node,
                "set union via |: the merged order is hash-dependent; merge "
                "deterministically (sorted(...) over a list union, or "
                "dict.fromkeys(a + b))",
            )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # set(...).union(...) — the combinator form of REP104.
        if node.attr in _SET_COMBINATORS and _is_set_expr(node.value):
            self._emit(
                "REP104",
                node,
                f"set combinator .{node.attr}(): result order is "
                "hash-dependent; merge deterministically instead",
            )
        # Partitioned-engine internals (REP106): only repro.sim.partition
        # may touch lane heaps / the drain bound / the entry table.
        if node.attr in _PDES_PRIVATE_ATTRS:
            self._emit(
                "REP106",
                node,
                f"direct access to partitioned-engine state .{node.attr}: "
                "cross-partition events must go through the engine API "
                "(call_at/schedule_batch/cancel/register_*), not shared "
                "mutable lane state",
            )
        self.generic_visit(node)

    # -- journal-bypass mutation (REP107) ---------------------------------------
    def _check_shared_store(
        self, node: ast.AST, targets: Iterable[ast.AST]
    ) -> None:
        for target in targets:
            for leaf in _flatten_store_targets(target):
                handle = _store_shared_handle(leaf)
                if handle is not None:
                    self._emit(
                        "REP107",
                        leaf,
                        f"store through shared .{handle} handle: under "
                        "parallel drain compute-lane callbacks race on "
                        "engine/cluster state; mutate it via the drain "
                        "journal (engine.journal fold_max/fold_add, "
                        "journal-aware metrics) or the engine API",
                    )

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_shared_store(node, node.targets)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_shared_store(node, (node.target,))
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_shared_store(node, (node.target,))
        self.generic_visit(node)

    # -- hot dataclasses (REP105) -----------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        decorated = False
        has_slots = False
        for dec in node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            name = _dotted_name(target)
            if name in ("dataclass", "dataclasses.dataclass"):
                decorated = True
                if isinstance(dec, ast.Call):
                    for kw in dec.keywords:
                        if (
                            kw.arg == "slots"
                            and isinstance(kw.value, ast.Constant)
                            and kw.value.value is True
                        ):
                            has_slots = True
        if (
            decorated
            and not has_slots
            and node.name.endswith(_HOT_SUFFIXES)
        ):
            self._emit(
                "REP105",
                node,
                f"hot dataclass {node.name} without slots=True: per-instance "
                "__dict__ costs space on the message path and admits "
                "untracked dynamic attributes",
            )
        self.generic_visit(node)


# -- bare lock.acquire() (REP109) ----------------------------------------------
def _is_acquire_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "acquire"
    )


def _acquire_receiver(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Attribute):
        return _dotted_name(node.func.value)
    return None


def _release_receivers(stmts: list[ast.stmt]) -> frozenset[str]:
    """Dotted receivers of ``.release()`` calls anywhere under ``stmts``."""
    out: set[str] = set()
    for stmt in stmts:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "release"
            ):
                recv = _dotted_name(node.func.value)
                if recv is not None:
                    out.add(recv)
    return frozenset(out)


def _scan_bare_acquires(tree: ast.AST, visitor: _LintVisitor) -> None:
    """Flag ``lock.acquire()`` calls not paired with a finally-release.

    Two shapes are accepted: a with-statement (never produces a bare
    ``.acquire()`` call, so nothing to do), and the explicit idiom::

        lock.acquire()
        try:
            ...
        finally:
            lock.release()

    where the acquire statement is immediately followed by a ``try``
    whose ``finally`` releases the same receiver, or the acquire sits
    inside a ``try`` body whose ``finally`` releases it (the
    conditional-acquire shape ``if lock.acquire(timeout=...)``).
    Everything else leaks the lock on an exception between acquire and
    release.
    """
    safe: set[int] = set()

    def mark_sibling_idiom(stmts: list[ast.stmt]) -> None:
        for i, stmt in enumerate(stmts[:-1]):
            if not (isinstance(stmt, ast.Expr) and _is_acquire_call(stmt.value)):
                continue
            assert isinstance(stmt.value, ast.Call)
            recv = _acquire_receiver(stmt.value)
            nxt = stmts[i + 1]
            if (
                recv is not None
                and isinstance(nxt, ast.Try)
                and recv in _release_receivers(nxt.finalbody)
            ):
                safe.add(id(stmt.value))

    def visit(node: ast.AST, released: frozenset[str]) -> None:
        if isinstance(node, ast.Try):
            inner = released | _release_receivers(node.finalbody)
            for stmt in node.body:
                visit(stmt, inner)
            for handler in node.handlers:
                for stmt in handler.body:
                    visit(stmt, inner)
            for stmt in node.orelse:
                visit(stmt, inner)
            for stmt in node.finalbody:
                visit(stmt, released)
            return
        if (
            _is_acquire_call(node)
            and id(node) not in safe
        ):
            assert isinstance(node, ast.Call)
            recv = _acquire_receiver(node)
            if recv is None or recv not in released:
                visitor._emit(
                    "REP109",
                    node,
                    f"bare {recv or '<lock>'}.acquire() without with/"
                    "try-finally: an exception before release leaks the "
                    "lock; use 'with lock:' or release in a finally",
                )
        for value in ast.iter_child_nodes(node):
            if isinstance(value, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visit(value, frozenset())
            else:
                visit(value, released)

    for child in ast.walk(tree):
        for _, value in ast.iter_fields(child):
            if (
                isinstance(value, list)
                and value
                and isinstance(value[0], ast.stmt)
            ):
                mark_sibling_idiom(value)
    visit(tree, frozenset())


def lint_source(
    source: str, path: str = "<string>", scope: str | None = None
) -> LintReport:
    """Lint one file's source text; ``scope`` overrides path-based scoping."""
    report = LintReport(checked_files=1)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        report.findings.append(
            Finding(
                rule="REP100",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message=f"file does not parse: {exc.msg}",
            )
        )
        return report
    visitor = _LintVisitor(path, scope if scope is not None else path_scope(path))
    visitor.visit(tree)
    _scan_bare_acquires(tree, visitor)
    lines = source.splitlines()
    for finding in visitor.findings:
        if is_suppressed(finding, lines):
            report.suppressed += 1
        else:
            report.findings.append(finding)
    return report


def lint_file(path: str, scope: str | None = None) -> LintReport:
    with open(path, encoding="utf-8") as fh:
        return lint_source(fh.read(), path=path, scope=scope)


def iter_python_files(paths: Iterable[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: list[str] = []
    for p in paths:
        if os.path.isdir(p):
            for dirpath, dirnames, filenames in os.walk(p):
                dirnames[:] = sorted(
                    d for d in dirnames if d != "__pycache__"
                )
                out.extend(
                    os.path.join(dirpath, f)
                    for f in sorted(filenames)
                    if f.endswith(".py")
                )
        elif p.endswith(".py"):
            out.append(p)
    return sorted(dict.fromkeys(out))


def lint_paths(paths: Iterable[str], scope: str | None = None) -> LintReport:
    """Lint every ``.py`` file under ``paths``; one merged report."""
    merged = LintReport()
    for path in iter_python_files(paths):
        single = lint_file(path, scope=scope)
        merged.findings.extend(single.findings)
        merged.suppressed += single.suppressed
        merged.checked_files += 1
    merged.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return merged
