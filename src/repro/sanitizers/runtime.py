"""Opt-in runtime sanitizers for the simulated machine.

Three detectors, all off by default (they cost time and memory on the hot
path) and switched on per-run via ``BFSConfig.sanitize`` /
``Graph500Runner(sanitize=True)`` / ``repro graph500 --sanitize`` or the
``repro sanitize`` determinism command:

- :class:`SpmWriteSanitizer` — the contention claim at runtime: consumer
  CPEs must DMA-write disjoint per-destination regions within one module
  execution (phase); two CPEs touching the same region means the shuffle
  plan's destination ownership is broken.
- :class:`MessageSanitizer` — payloads are passed by reference through
  :class:`~repro.network.simmpi.SimCluster`, so mutating a buffer after
  ``send`` silently corrupts an in-flight message. The sanitizer digests
  every payload at injection and re-digests at delivery.
- :func:`check_determinism` — the end-to-end guarantee: run the same
  benchmark configuration twice and diff report, metric and span digests
  bit-for-bit.

Raises :class:`SanitizerViolation` (a :class:`~repro.errors.ReproError`)
on the first conflict unless constructed with ``raise_on_violation=False``,
in which case violations accumulate for inspection.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ReproError


class SanitizerViolation(ReproError, RuntimeError):
    """A runtime sanitizer detected a broken invariant."""


# --------------------------------------------------------------------------
# SPM / output-region write conflicts
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class RegionClaim:
    """One CPE's write claim on a byte region within a phase."""

    cpe: tuple[int, int] | str
    lo: int
    hi: int
    label: str = ""


@dataclass
class SpmConflict:
    phase: str
    first: RegionClaim
    second: RegionClaim

    def render(self) -> str:
        return (
            f"phase {self.phase!r}: CPE {self.second.cpe} writes "
            f"[{self.second.lo}, {self.second.hi}) overlapping CPE "
            f"{self.first.cpe}'s [{self.first.lo}, {self.first.hi})"
            + (f" ({self.first.label} / {self.second.label})"
               if self.first.label or self.second.label else "")
        )


class SpmWriteSanitizer:
    """Detects two CPEs claiming overlapping write regions in one phase.

    A *phase* is one module execution (one shuffle); claims reset when
    :meth:`begin_phase` opens the next one. Regions live in a single
    address space per phase — for the consumer-side check that space is
    the per-destination output region array, where disjointness is
    exactly the paper's "no contention, no atomics" claim.
    """

    def __init__(self, raise_on_violation: bool = True) -> None:
        self.raise_on_violation = raise_on_violation
        self.conflicts: list[SpmConflict] = []
        self.phases_checked = 0
        self.claims_checked = 0
        self._phase: str = ""
        self._claims: list[RegionClaim] = []

    def begin_phase(self, label: str) -> None:
        self._phase = label
        self._claims = []
        self.phases_checked += 1

    def claim(
        self,
        cpe: tuple[int, int] | str,
        lo: int,
        hi: int,
        label: str = "",
    ) -> None:
        """Record a write claim; flag overlap with a different CPE's claim."""
        if hi <= lo:
            raise SanitizerViolation(
                f"empty or negative region [{lo}, {hi}) claimed by {cpe}"
            )
        new = RegionClaim(cpe, lo, hi, label)
        self.claims_checked += 1
        for prior in self._claims:
            if prior.cpe != cpe and prior.lo < hi and lo < prior.hi:
                conflict = SpmConflict(self._phase, prior, new)
                self.conflicts.append(conflict)
                if self.raise_on_violation:
                    raise SanitizerViolation(
                        "SPM write conflict: " + conflict.render()
                    )
        self._claims.append(new)

    def check_bucket_writes(
        self, plan: Any, destinations: Iterable[int], phase: str
    ) -> None:
        """Verify one shuffle's consumer writes are contention-free.

        ``destinations`` are the bucket destination indices of one module
        execution; each maps through the plan to an owning consumer CPE
        and a staging-slot-sized output region. Disjoint regions per
        distinct destination *and* a single owner per region is the
        invariant; a broken ``consumer_for`` (two consumers claiming one
        destination, or one region shared by two destinations) trips it.
        """
        self.begin_phase(phase)
        width = plan.staging_buffer_bytes
        for d in dict.fromkeys(int(d) for d in destinations):
            slot = d % plan.num_destinations
            consumer = plan.consumer_for(slot)
            self.claim(
                consumer,
                slot * width,
                (slot + 1) * width,
                label=f"dest {d}",
            )


# --------------------------------------------------------------------------
# message-mutated-after-send detection
# --------------------------------------------------------------------------
def payload_digest(payload: Any) -> str:
    """Stable content digest of a message payload.

    Payloads are numpy arrays, tuples/lists of arrays, scalars, dicts or
    ``None``; anything else falls back to ``repr`` (payloads move by
    reference, so this only needs to be sensitive to mutation, not
    canonical across processes).
    """
    h = hashlib.sha256()

    def feed(obj: Any) -> None:
        if obj is None:
            h.update(b"none")
        elif isinstance(obj, np.ndarray):
            h.update(b"nd")
            h.update(str(obj.dtype).encode())
            h.update(str(obj.shape).encode())
            h.update(np.ascontiguousarray(obj).tobytes())
        elif isinstance(obj, (tuple, list)):
            h.update(b"seq")
            for item in obj:
                feed(item)
        elif isinstance(obj, dict):
            h.update(b"map")
            for key in sorted(obj, key=repr):
                h.update(repr(key).encode())
                feed(obj[key])
        elif isinstance(obj, (int, float, str, bytes, bool)):
            h.update(repr(obj).encode())
        else:
            h.update(repr(obj).encode())

    feed(payload)
    return h.hexdigest()


@dataclass
class MutationViolation:
    tag: str
    src: int
    dst: int
    send_time: float

    def render(self) -> str:
        return (
            f"message {self.tag!r} {self.src}->{self.dst} sent at "
            f"{self.send_time:.3e}s was mutated between send and delivery"
        )


class MessageSanitizer:
    """Digests payloads at send, re-checks at delivery.

    Installs by wrapping the cluster's ``send``/``send_batch`` (instance
    attributes, the same interception point the fault injectors use, so
    batch sends degrade through the wrapped scalar path only when a fault
    injector is *also* present) and ``_deliver``. ``uninstall`` restores
    the original methods.
    """

    def __init__(self, cluster: Any, raise_on_violation: bool = True) -> None:
        self.cluster = cluster
        self.raise_on_violation = raise_on_violation
        self.violations: list[MutationViolation] = []
        self.messages_checked = 0
        self._digests: dict[int, str] = {}  # id(msg) -> digest
        self._original_send = cluster.send
        self._original_send_batch = cluster.send_batch
        self._original_deliver = cluster._deliver
        cluster.send = self._send
        cluster.send_batch = self._send_batch
        cluster._deliver = self._deliver

    # -- interception -----------------------------------------------------------
    def _send(
        self,
        src: int,
        dst: int,
        tag: str,
        nbytes: int,
        payload: Any = None,
        at_time: float | None = None,
    ) -> Any:
        msg = self._original_send(src, dst, tag, nbytes, payload, at_time)
        self._digests[id(msg)] = payload_digest(msg.payload)
        return msg

    def _send_batch(
        self,
        src: int,
        dests: Any,
        tag: str,
        nbytes: int,
        payloads: Any = None,
        at_times: Any = None,
    ) -> Any:
        msgs = self._original_send_batch(
            src, dests, tag, nbytes, payloads, at_times
        )
        for msg in msgs:
            self._digests[id(msg)] = payload_digest(msg.payload)
        return msgs

    def _deliver(self, msg: Any) -> None:
        expected = self._digests.pop(id(msg), None)
        if expected is not None:
            self.messages_checked += 1
            if payload_digest(msg.payload) != expected:
                violation = MutationViolation(
                    msg.tag, msg.src, msg.dst, msg.send_time
                )
                self.violations.append(violation)
                if self.raise_on_violation:
                    raise SanitizerViolation(
                        "payload mutated after send: " + violation.render()
                    )
        self._original_deliver(msg)

    def uninstall(self) -> None:
        for name in ("send", "send_batch", "_deliver"):
            self.cluster.__dict__.pop(name, None)
        self._digests.clear()


# --------------------------------------------------------------------------
# determinism sanitizer: double-run digest diff
# --------------------------------------------------------------------------
@dataclass
class RunDigest:
    """Digests of everything a benchmark run externalises."""

    report: str
    spans: str
    metrics: str

    def to_dict(self) -> dict[str, str]:
        return {"report": self.report, "spans": self.spans,
                "metrics": self.metrics}


@dataclass
class DeterminismReport:
    """Outcome of an N-run determinism check."""

    digests: list[RunDigest] = field(default_factory=list)
    mismatches: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def render(self) -> str:
        lines = []
        for i, d in enumerate(self.digests):
            lines.append(
                f"run {i}: report={d.report[:12]} spans={d.spans[:12]} "
                f"metrics={d.metrics[:12]}"
            )
        if self.ok:
            lines.append(f"deterministic across {len(self.digests)} run(s)")
        else:
            lines.extend(f"MISMATCH: {m}" for m in self.mismatches)
        return "\n".join(lines)


def _digest_text(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def run_digest(run_fn: Callable[[Any], str]) -> RunDigest:
    """Execute one benchmark run and digest its externally visible state.

    ``run_fn(telemetry)`` performs the run and returns the report text;
    span and metric digests come from the telemetry it recorded into.
    """
    from repro.telemetry import Telemetry

    tel = Telemetry()
    report = run_fn(tel)
    span_doc = [
        (s.name, s.category, s.parent, round(s.start, 15),
         round(s.finish, 15), sorted(s.attrs.items(), key=lambda kv: kv[0]))
        for s in tel.spans.spans
    ]
    metrics_doc = sorted(tel.metrics.snapshot().items())
    return RunDigest(
        report=_digest_text(report),
        spans=_digest_text(json.dumps(span_doc, default=str)),
        metrics=_digest_text(json.dumps(metrics_doc, default=str)),
    )


def check_determinism(
    scale: int,
    nodes: int,
    num_roots: int = 4,
    seed: int = 1,
    variant: str = "relay-cpe",
    workers: int = 1,
    runs: int = 2,
    validate: bool = False,
    engine_partitions: int | Sequence[int] = 1,
    drain_workers: int | Sequence[int] = 1,
    drain_backend: str = "thread",
) -> DeterminismReport:
    """Run the benchmark ``runs`` times and diff every digest.

    Each run gets a fresh runner, kernel, engine and telemetry — nothing
    is shared, so any digest difference is real nondeterminism (host
    clock, global RNG, hash-order iteration) leaking into results.

    ``engine_partitions`` may be a sequence, cycled across runs — e.g.
    ``[1, 2]`` proves the partitioned PDES engine digest-identical to the
    sequential one, since the partitioned engine is pinned bit-identical
    (parents, sim seconds, stats, spans) to the sequential specification.
    ``drain_workers`` cycles the same way — ``[1, 2]`` with a fixed
    partition count proves the parallel drain scheduler digest-identical
    to the serial drain loop (the journal-merge replay is specified to
    reproduce the serial engine's event order exactly).
    """
    from repro.graph500.runner import Graph500Runner

    if isinstance(engine_partitions, int):
        partition_cycle = [engine_partitions]
    else:
        partition_cycle = [int(p) for p in engine_partitions] or [1]
    if isinstance(drain_workers, int):
        drain_cycle = [drain_workers]
    else:
        drain_cycle = [int(w) for w in drain_workers] or [1]

    def make_run_fn(partitions: int, drain: int) -> Callable[[Any], str]:
        def run_fn(tel: Any) -> str:
            runner = Graph500Runner(
                scale=scale,
                nodes=nodes,
                seed=seed,
                variant=variant,
                validate=validate,
                workers=workers,
                engine_partitions=partitions,
                drain_workers=drain,
                drain_backend=drain_backend,
                telemetry=tel,
            )
            return runner.run(num_roots=num_roots).to_json()

        return run_fn

    result = DeterminismReport()
    for i in range(runs):
        partitions = partition_cycle[i % len(partition_cycle)]
        drain = drain_cycle[i % len(drain_cycle)]
        result.digests.append(run_digest(make_run_fn(partitions, drain)))
    first = result.digests[0]
    for i, other in enumerate(result.digests[1:], start=1):
        for kind in ("report", "spans", "metrics"):
            if getattr(other, kind) != getattr(first, kind):
                result.mismatches.append(
                    f"{kind} digest of run {i} differs from run 0 "
                    f"({getattr(other, kind)[:12]} != "
                    f"{getattr(first, kind)[:12]})"
                )
    return result
