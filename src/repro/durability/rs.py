"""A systematic Reed–Solomon erasure code over GF(256).

``RSCode(k, m)`` splits a byte string into ``k`` equal data shards and
computes ``m`` parity shards such that *any* ``k`` of the ``k + m``
shards reconstruct the original bytes — the MDS property that lets a
checkpoint survive any ``m`` simultaneous disk/node losses at
``(k + m) / k`` storage overhead (versus 2x for a full buddy copy).

Construction follows the classic Vandermonde recipe (the shape of
kelp's ``rs.c``, reimplemented over numpy): build the (k+m) x k
Vandermonde matrix on distinct evaluation points 0..k+m-1, then
right-multiply by the inverse of its top k x k block. The result is a
generator whose top k rows are the identity — encoding leaves the data
shards verbatim (systematic) — and whose every k-row submatrix is
invertible, because row operations preserve the Vandermonde minor
structure. Decoding gathers any k surviving rows, inverts that k x k
submatrix once, and applies it to the surviving shards; the per-byte
work is all vectorized GF arithmetic from :mod:`repro.durability.gf256`.
"""

from __future__ import annotations

import numpy as np

from repro.durability.gf256 import gf_inv_matrix, gf_matmul, gf_pow
from repro.errors import ConfigError


class RSCode:
    """A systematic RS(k, m) erasure code: k data + m parity shards."""

    def __init__(self, data_shards: int, parity_shards: int) -> None:
        if data_shards < 1:
            raise ConfigError(f"need at least one data shard, got {data_shards}")
        if parity_shards < 1:
            raise ConfigError(
                f"need at least one parity shard, got {parity_shards}"
            )
        if data_shards + parity_shards > 255:
            raise ConfigError(
                "GF(256) Vandermonde construction supports at most 255 "
                f"total shards, got {data_shards + parity_shards}"
            )
        self.data_shards = data_shards
        self.parity_shards = parity_shards
        total = data_shards + parity_shards
        vandermonde = np.array(
            [[gf_pow(row, col) for col in range(data_shards)] for row in range(total)],
            dtype=np.uint8,
        )
        self.generator = gf_matmul(
            vandermonde, gf_inv_matrix(vandermonde[:data_shards])
        )

    @property
    def total_shards(self) -> int:
        return self.data_shards + self.parity_shards

    def shard_length(self, nbytes: int) -> int:
        """Bytes per shard for an ``nbytes`` payload (zero-padded)."""
        return max(1, -(-nbytes // self.data_shards))

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode a flat ``uint8`` payload into ``(k + m, L)`` shards.

        The payload is padded with zeros to a multiple of ``k``; the top
        ``k`` shards are the payload verbatim (systematic code).
        """
        data = np.ascontiguousarray(data, dtype=np.uint8)
        if data.ndim != 1:
            raise ConfigError(f"encode expects a flat byte array, got {data.shape}")
        length = self.shard_length(len(data))
        padded = np.zeros(self.data_shards * length, dtype=np.uint8)
        padded[: len(data)] = data
        matrix = padded.reshape(self.data_shards, length)
        return gf_matmul(self.generator, matrix)

    def decode(
        self, present: np.ndarray | list[int], shards: np.ndarray, nbytes: int
    ) -> np.ndarray:
        """Reconstruct the original ``nbytes`` payload from any k shards.

        ``present`` lists the surviving shard indices (0..k+m-1) and
        ``shards`` their contents, row-aligned with ``present``. Extra
        survivors beyond k are ignored deterministically (lowest indices
        win).
        """
        present = np.asarray(present, dtype=np.int64)
        shards = np.asarray(shards, dtype=np.uint8)
        if shards.ndim != 2 or len(present) != shards.shape[0]:
            raise ConfigError(
                f"shard rows {shards.shape} must align with present "
                f"indices ({len(present)})"
            )
        if len(np.unique(present)) != len(present):
            raise ConfigError("duplicate shard indices in decode")
        if np.any(present < 0) or np.any(present >= self.total_shards):
            raise ConfigError("shard index out of range in decode")
        if len(present) < self.data_shards:
            raise ConfigError(
                f"unrecoverable: {len(present)} shards survive, "
                f"need {self.data_shards}"
            )
        order = np.argsort(present, kind="stable")[: self.data_shards]
        rows = present[order]
        sub = self.generator[rows]
        data = gf_matmul(gf_inv_matrix(sub), shards[order])
        flat = data.reshape(-1)
        if nbytes > len(flat):
            raise ConfigError(
                f"payload of {nbytes} bytes cannot come from "
                f"{len(flat)}-byte shard group"
            )
        return flat[:nbytes]
