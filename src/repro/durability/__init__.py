"""Erasure-coded checkpoint durability (the ROADMAP's RS(k, m) item).

The buddy checkpointing of :mod:`repro.resilience` survives exactly one
node loss at 2x storage. This package upgrades the durability story to
"provably survives any m simultaneous node/disk losses at (k+m)/k
storage" and makes the proof executable:

- :mod:`repro.durability.gf256` — vectorized GF(256) arithmetic
  (log/exp tables over numpy, matrix inverse by Gauss–Jordan);
- :mod:`repro.durability.rs` — :class:`RSCode`, a systematic
  Vandermonde Reed–Solomon erasure code: any k of k+m shards rebuild
  the payload;
- :mod:`repro.durability.shards` — snapshot serialisation,
  :class:`ShardPlacement` (never the owner, never its buddy, rack-aware
  across fat-tree supernodes) and the :class:`ShardedCheckpointStore`
  with per-shard CRC32, background scrub, and heal-on-restore;
- :mod:`repro.durability.chaos` — seeded chaos campaigns
  (:func:`run_campaign`, ``python -m repro chaos``) sweeping randomized
  fault scenarios inside the loss budget and asserting bit-identical
  recovery against the fault-free run.

Fault *injection* for disks lives with the other injectors in
:mod:`repro.sim.faults` (:class:`~repro.sim.faults.DiskFaultPlan`);
the BFS driver selects this store via
``ResilienceConfig(checkpoint_mode="rs")``.
"""

from repro.durability.chaos import (
    CampaignReport,
    ChaosConfig,
    ScenarioResult,
    run_campaign,
)
from repro.durability.gf256 import gf_div, gf_inv, gf_inv_matrix, gf_matmul, gf_mul
from repro.durability.rs import RSCode
from repro.durability.shards import (
    ShardedCheckpointStore,
    ShardPlacement,
    snapshot_from_bytes,
    snapshot_to_bytes,
)

__all__ = [
    "CampaignReport",
    "ChaosConfig",
    "ScenarioResult",
    "run_campaign",
    "gf_div",
    "gf_inv",
    "gf_inv_matrix",
    "gf_matmul",
    "gf_mul",
    "RSCode",
    "ShardedCheckpointStore",
    "ShardPlacement",
    "snapshot_from_bytes",
    "snapshot_to_bytes",
]
