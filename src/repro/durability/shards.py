"""Shard planning and the erasure-coded checkpoint store.

Each node's :class:`~repro.resilience.checkpoint.NodeSnapshot` is
serialised (parent array + frontier bitmap; ``curr`` is derivable from
the bitmap), split by :class:`~repro.durability.rs.RSCode` into k data +
m parity shards, and the shards placed on *other* simulated nodes under
three rules:

1. **never the owner** — a node holding any shard of its own snapshot
   would lose checkpoint and shard together when it dies;
2. **never the owner's buddy** — the pair that fate-shares in the buddy
   checkpointing scheme (rank ``r ^ 1``) stays excluded, so the RS
   layout strictly dominates the buddy layout's failure modes;
3. **rack-aware** — holders round-robin across fat-tree supernodes
   before reusing one, so a whole-supernode outage costs the fewest
   possible shards per group.

The :class:`ShardedCheckpointStore` mirrors the buddy
:class:`~repro.resilience.checkpoint.CheckpointStore` interface
(``save`` / ``restore`` / ``taken`` / ``restored``) but keeps *only*
shards — (k+m)/k storage overhead instead of 2x — and therefore always
exercises the decode path on restore: a recovered traversal's
bit-identical parents are evidence the codec round-tripped, not an
artifact of a retained plain copy. Every shard carries a CRC32; scrub
verifies them in the background and repairs corrupt/missing shards by
decode + re-encode while >= k healthy shards survive per group.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.durability.rs import RSCode
from repro.errors import ConfigError, ReproError
from repro.resilience.checkpoint import Checkpoint, NodeSnapshot


def snapshot_to_bytes(snap: NodeSnapshot) -> np.ndarray:
    """Serialise a snapshot to the flat byte layout priced by ``nbytes``:
    the parent array (little-endian int64) then the frontier bitmap."""
    if not np.array_equal(snap.curr, np.flatnonzero(snap.curr_mask)):
        raise ReproError(
            "snapshot frontier list and bitmap disagree; barrier snapshots "
            "must keep curr == flatnonzero(curr_mask)"
        )
    parent_bytes = np.frombuffer(
        np.ascontiguousarray(snap.parent, dtype="<i8").tobytes(), dtype=np.uint8
    )
    mask_bytes = np.packbits(snap.curr_mask.astype(bool))
    return np.concatenate([parent_bytes, mask_bytes])


def snapshot_from_bytes(buf: np.ndarray, n_local: int) -> NodeSnapshot:
    """Inverse of :func:`snapshot_to_bytes` for a node with ``n_local``
    vertices; rebuilds ``curr`` from the bitmap."""
    parent_end = 8 * n_local
    mask_end = parent_end + (n_local + 7) // 8
    if len(buf) < mask_end:
        raise ConfigError(
            f"serialized snapshot too short: {len(buf)} bytes for "
            f"{n_local} local vertices"
        )
    parent = np.frombuffer(
        np.ascontiguousarray(buf[:parent_end]).tobytes(), dtype="<i8"
    ).astype(np.int64)
    mask = np.unpackbits(
        np.ascontiguousarray(buf[parent_end:mask_end])
    )[:n_local].astype(bool)
    return NodeSnapshot(
        parent=parent, curr=np.flatnonzero(mask), curr_mask=mask
    )


@dataclass(frozen=True)
class ShardPlacement:
    """Deterministic, rack-aware shard-to-holder assignment."""

    num_nodes: int
    nodes_per_super_node: int
    data_shards: int
    parity_shards: int

    def __post_init__(self) -> None:
        total = self.data_shards + self.parity_shards
        if self.nodes_per_super_node < 1:
            raise ConfigError(
                f"nodes_per_super_node must be >= 1, got "
                f"{self.nodes_per_super_node}"
            )
        # Worst case the owner and its buddy are both ineligible.
        if self.num_nodes < total + 2:
            raise ConfigError(
                f"RS({self.data_shards},{self.parity_shards}) placement "
                f"needs >= {total + 2} nodes (owner and buddy excluded), "
                f"got {self.num_nodes}"
            )

    @staticmethod
    def buddy(rank: int, num_nodes: int) -> int:
        """The buddy-checkpoint partner of ``rank``: its XOR-1 pair, or
        the previous rank when the pair would fall off the end."""
        partner = rank ^ 1
        return partner if partner < num_nodes else rank - 1

    def holders(self, owner: int) -> tuple[int, ...]:
        """The k+m distinct holder ranks for ``owner``'s shards.

        Walks supernodes round-robin starting just past the owner's
        supernode, taking at most one new node per supernode per lap, so
        holders spread across the most racks the eligible set allows.
        """
        total = self.data_shards + self.parity_shards
        excluded = {owner, self.buddy(owner, self.num_nodes)}
        nps = self.nodes_per_super_node
        num_supers = -(-self.num_nodes // nps)
        racks: list[list[int]] = [[] for _ in range(num_supers)]
        for rank in range(self.num_nodes):
            if rank not in excluded:
                racks[rank // nps].append(rank)
        chosen: list[int] = []
        start = owner // nps + 1
        lap = 0
        while len(chosen) < total:
            progressed = False
            for step in range(num_supers):
                rack = racks[(start + step) % num_supers]
                if lap < len(rack):
                    chosen.append(rack[lap])
                    progressed = True
                    if len(chosen) == total:
                        break
            if not progressed:  # pragma: no cover - guarded by __post_init__
                raise ConfigError(
                    f"cannot place {total} shards for owner {owner} on "
                    f"{self.num_nodes} nodes"
                )
            lap += 1
        return tuple(chosen)


@dataclass
class _Shard:
    """One stored shard: its group coordinates, bytes, and checksum."""

    owner: int
    index: int
    holder: int
    data: np.ndarray
    crc: int

    @property
    def healthy(self) -> bool:
        return zlib.crc32(self.data.tobytes()) == self.crc


@dataclass
class _GroupMeta:
    """Per-owner decode metadata for the current checkpoint."""

    n_local: int
    nbytes: int
    holders: tuple[int, ...]


class ShardedCheckpointStore:
    """Erasure-coded drop-in for the buddy ``CheckpointStore``.

    Shards are the *only* durable copy: ``restore`` always decodes, and
    heals any missing or corrupt shards back onto their planned holders
    (dead holders are skipped until they are revived and the next save
    or scrub re-covers them).
    """

    def __init__(self, code: RSCode, placement: ShardPlacement) -> None:
        if placement.data_shards != code.data_shards or (
            placement.parity_shards != code.parity_shards
        ):
            raise ConfigError("placement and code disagree on (k, m)")
        self.code = code
        self.placement = placement
        self.taken = 0
        self.restored = 0
        #: Cumulative checkpoint traffic: every shard byte shipped to a
        #: holder, including heal re-placements.
        self.bytes_written = 0
        #: Bytes of the current checkpoint actually resident on disks.
        self.storage_bytes = 0
        #: Serialized (pre-coding) bytes of the current checkpoint.
        self.raw_bytes = 0
        self.shards_lost = 0
        self.shards_corrupted = 0
        self.shards_rebuilt = 0
        self.scrub_passes = 0
        self.scrub_repairs = 0
        self._shards: dict[tuple[int, int], _Shard] = {}
        self._groups: dict[int, _GroupMeta] = {}
        self._meta: Checkpoint | None = None

    # -- introspection -------------------------------------------------------
    @property
    def last_level(self) -> int | None:
        return self._meta.level if self._meta is not None else None

    @property
    def has_checkpoint(self) -> bool:
        return self._meta is not None

    @property
    def max_shard_bytes(self) -> int:
        """Largest per-shard payload of the current checkpoint (the unit
        of the parallel transfer cost model)."""
        if not self._groups:
            return 0
        return max(
            self.code.shard_length(g.nbytes) for g in self._groups.values()
        )

    def holder_bytes(self, rank: int) -> int:
        """Bytes of checkpoint shards currently on ``rank``'s disk."""
        return sum(
            len(s.data) for s in self._shards.values() if s.holder == rank
        )

    # -- save ----------------------------------------------------------------
    def save(self, checkpoint: Checkpoint) -> None:
        """Shard and place a barrier checkpoint, replacing the previous one.

        The hub/policy sidecar state rides in the (tiny) metadata record —
        the replicated hub bitmaps are already cluster-global, so sharding
        them would model redundancy they inherently have.
        """
        self._shards.clear()
        self._groups.clear()
        # Keep only the sidecar state; snapshots live exclusively in shards.
        self._meta = Checkpoint(
            level=checkpoint.level,
            snapshots=(),
            hub_frontier=checkpoint.hub_frontier,
            hub_visited=checkpoint.hub_visited,
            policy_state=checkpoint.policy_state,
        )
        storage = 0
        raw = 0
        for owner, snap in enumerate(checkpoint.snapshots):
            payload = snapshot_to_bytes(snap)
            shards = self.code.encode(payload)
            holders = self.placement.holders(owner)
            self._groups[owner] = _GroupMeta(
                n_local=len(snap.curr_mask),
                nbytes=len(payload),
                holders=holders,
            )
            raw += len(payload)
            for index, holder in enumerate(holders):
                data = np.ascontiguousarray(shards[index])
                self._shards[(owner, index)] = _Shard(
                    owner=owner,
                    index=index,
                    holder=holder,
                    data=data,
                    crc=zlib.crc32(data.tobytes()),
                )
                storage += len(data)
        self.taken += 1
        self.storage_bytes = storage
        self.raw_bytes = raw
        self.bytes_written += storage

    # -- fault entry points (driven by DiskFaultInjector) --------------------
    def drop_holder(self, rank: int) -> int:
        """A disk (or the whole node) at ``rank`` is gone: its shards too.
        Returns how many shards were lost."""
        doomed = [key for key, s in self._shards.items() if s.holder == rank]
        for key in doomed:
            self.storage_bytes -= len(self._shards[key].data)
            del self._shards[key]
        self.shards_lost += len(doomed)
        return len(doomed)

    def corrupt_shard(self, rank: int, rng: np.random.Generator) -> bool:
        """Flip one byte of one shard on ``rank``'s disk (seeded choice).
        Returns whether a shard was there to corrupt."""
        keys = sorted(
            key for key, s in self._shards.items() if s.holder == rank
        )
        if not keys:
            return False
        shard = self._shards[keys[int(rng.integers(0, len(keys)))]]
        offset = int(rng.integers(0, len(shard.data)))
        flip = 1 + int(rng.integers(0, 255))
        shard.data = shard.data.copy()
        shard.data[offset] ^= flip
        self.shards_corrupted += 1
        return True

    # -- scrub ---------------------------------------------------------------
    def scrub(self, dead: frozenset[int] = frozenset()) -> tuple[int, int]:
        """Verify every shard checksum; rebuild what fails or is missing.

        Returns ``(checked, repaired)``. Groups that have lost too many
        shards to repair are left for ``restore`` to report — scrub is
        best-effort background maintenance, not the recovery path.
        """
        checked = 0
        repaired = 0
        for owner in sorted(self._groups):
            meta = self._groups[owner]
            good: list[int] = []
            bad: list[int] = []
            for index in range(self.code.total_shards):
                shard = self._shards.get((owner, index))
                if shard is None:
                    bad.append(index)
                    continue
                checked += 1
                if shard.healthy:
                    good.append(index)
                else:
                    bad.append(index)
            if not bad or len(good) < self.code.data_shards:
                continue
            repaired += self._rebuild_group(owner, meta, good, bad, dead)
        self.scrub_passes += 1
        self.scrub_repairs += repaired
        return checked, repaired

    def _rebuild_group(
        self,
        owner: int,
        meta: _GroupMeta,
        good: list[int],
        bad: list[int],
        dead: frozenset[int],
    ) -> int:
        """Decode a group from its healthy shards and re-place the rest."""
        payload = self.code.decode(
            np.asarray(good, dtype=np.int64),
            np.stack([self._shards[(owner, i)].data for i in good]),
            meta.nbytes,
        )
        fresh = self.code.encode(payload)
        rebuilt = 0
        for index in bad:
            holder = meta.holders[index]
            if holder in dead:
                # No disk to write to yet; the next scrub or save catches it.
                continue
            old = self._shards.get((owner, index))
            if old is not None:
                self.storage_bytes -= len(old.data)
            data = np.ascontiguousarray(fresh[index])
            self._shards[(owner, index)] = _Shard(
                owner=owner,
                index=index,
                holder=holder,
                data=data,
                crc=zlib.crc32(data.tobytes()),
            )
            self.storage_bytes += len(data)
            self.bytes_written += len(data)
            rebuilt += 1
        self.shards_rebuilt += rebuilt
        return rebuilt

    # -- restore -------------------------------------------------------------
    def restore(self, dead: frozenset[int] = frozenset()) -> Checkpoint:
        """Decode every node's snapshot from surviving healthy shards.

        ``dead`` names ranks whose disks are unreadable *right now* (the
        crashed nodes during recovery); their shards are treated as
        erasures on top of anything already lost or corrupt. Missing
        shards are healed onto live holders as part of the pass. Raises
        :class:`LookupError` when no checkpoint was ever saved and
        :class:`ReproError` when some group has fewer than k healthy
        shards (the >m-failures case).
        """
        if self._meta is None:
            raise LookupError("no checkpoint to restore from")
        snapshots: list[NodeSnapshot] = []
        for owner in sorted(self._groups):
            meta = self._groups[owner]
            good: list[int] = []
            bad: list[int] = []
            for index in range(self.code.total_shards):
                shard = self._shards.get((owner, index))
                if shard is None or shard.holder in dead or not shard.healthy:
                    bad.append(index)
                else:
                    good.append(index)
            if len(good) < self.code.data_shards:
                raise ReproError(
                    f"unrecoverable checkpoint: node {owner}'s shard group "
                    f"has {len(good)} healthy shards, needs "
                    f"{self.code.data_shards}"
                )
            payload = self.code.decode(
                np.asarray(good, dtype=np.int64),
                np.stack([self._shards[(owner, i)].data for i in good]),
                meta.nbytes,
            )
            snapshots.append(snapshot_from_bytes(payload, meta.n_local))
            if bad:
                self._rebuild_group(owner, meta, good, bad, dead)
        self.restored += 1
        return Checkpoint(
            level=self._meta.level,
            snapshots=tuple(snapshots),
            hub_frontier=self._meta.hub_frontier,
            hub_visited=self._meta.hub_visited,
            policy_state=self._meta.policy_state,
        )
