"""Seeded chaos campaigns: randomized fault sweeps with a correctness oracle.

A campaign runs one fault-free baseline traversal, then N scenarios of
the same traversal under randomized faults — node crashes, checkpoint
disk losses, latent shard corruption, degraded disks — each scenario
seeded from ``substream(seed, "chaos", i)`` so the whole sweep replays
bit-for-bit. Every scenario's destructive fault count is drawn within
the configured loss budget (``<= rs_parity_shards``), which is exactly
the envelope RS(k, m) durability promises to survive: the campaign
asserts **zero aborts** and **bit-identical BFS parents** against the
fault-free run, turning the codec's paper guarantee into an executable,
adversarially-seeded check (kelp's ``simulate-network-rs.py`` pattern,
pointed at checkpoints instead of packets).

Per-scenario outcomes (faults injected, recoveries, shards rebuilt,
scrub repairs, recovery seconds, storage/traffic overhead) land in the
report and — when a :class:`repro.telemetry.Telemetry` is supplied — in
its span/metric registries.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError, SimulatedCrash
from repro.graph.csr import CSRGraph
from repro.graph.kronecker import KroneckerGenerator
from repro.graph500.roots import sample_roots
from repro.resilience.config import ResilienceConfig
from repro.sim.faults import (
    DiskFaultInjector,
    DiskFaultPlan,
    NodeFaultInjector,
    NodeFaultPlan,
)
from repro.sim.rng import substream
from repro.utils.tables import Table

#: The destructive fault kinds a scenario draws from. Crashes take the
#: whole node (its checkpoint disk is replaced empty on revival); disk
#: losses take only the checkpoint disk; corruptions flip one stored
#: shard byte (caught by CRC at scrub/restore time).
FAULT_KINDS = ("crash", "disk-loss", "corrupt")


@dataclass(frozen=True)
class ChaosConfig:
    """One campaign: workload, code parameters, and the fault envelope."""

    scale: int = 13
    nodes: int = 8
    scenarios: int = 50
    seed: int = 7
    variant: str = "relay-cpe"
    edge_factor: int = 16
    nodes_per_super_node: int = 4
    data_shards: int = 4
    parity_shards: int = 2
    #: Destructive faults per scenario are drawn uniformly from
    #: ``1..min(max_losses, parity_shards)`` — never beyond the loss
    #: budget the code can survive.
    max_losses: int = 2
    #: Probability a scenario additionally degrades one disk (slower
    #: checkpoint I/O; never destructive).
    degrade_probability: float = 0.5
    checkpoint_interval: int = 1
    scrub_interval: int = 1

    def __post_init__(self) -> None:
        if self.scenarios < 1:
            raise ConfigError(f"need at least one scenario, got {self.scenarios}")
        if self.max_losses < 1:
            raise ConfigError(f"max_losses must be >= 1, got {self.max_losses}")
        if not 0.0 <= self.degrade_probability <= 1.0:
            raise ConfigError(
                f"degrade probability must be in [0, 1], got "
                f"{self.degrade_probability}"
            )

    @property
    def loss_budget(self) -> int:
        return min(self.max_losses, self.parity_shards)


@dataclass(frozen=True)
class ScenarioResult:
    """One scenario's faults and verified outcome."""

    scenario: int
    faults: tuple[str, ...]
    degraded: tuple[str, ...]
    outcome: str  # "clean" | "recovered" | "aborted"
    parents_match: bool
    recoveries: int
    shards_lost: int
    shards_rebuilt: int
    scrub_repairs: int
    sim_seconds: float
    checkpoint_seconds: float
    recovery_seconds: float
    storage_overhead: float

    @property
    def ok(self) -> bool:
        return self.outcome != "aborted" and self.parents_match


@dataclass
class CampaignReport:
    """The campaign's scenarios plus the baseline they were checked against."""

    config: ChaosConfig
    baseline_seconds: float
    results: list[ScenarioResult] = field(default_factory=list)

    @property
    def aborted(self) -> int:
        return sum(1 for r in self.results if r.outcome == "aborted")

    @property
    def mismatched(self) -> int:
        return sum(1 for r in self.results if not r.parents_match)

    @property
    def ok(self) -> bool:
        return bool(self.results) and all(r.ok for r in self.results)

    def render(self) -> str:
        cfg = self.config
        t = Table(
            ["#", "faults", "outcome", "parents", "recov", "rebuilt",
             "scrubfix", "slowdown"],
            title=(
                f"Chaos campaign: scale-{cfg.scale}, {cfg.nodes} nodes, "
                f"RS({cfg.data_shards},{cfg.parity_shards}), "
                f"{len(self.results)} scenarios, seed {cfg.seed}"
            ),
        )
        for r in self.results:
            slowdown = self.baseline_seconds and (
                r.sim_seconds / self.baseline_seconds - 1.0
            )
            t.add_row([
                r.scenario,
                ", ".join(r.faults + r.degraded) or "none",
                r.outcome,
                "match" if r.parents_match else "MISMATCH",
                r.recoveries,
                r.shards_rebuilt,
                r.scrub_repairs,
                f"{slowdown:+.1%}",
            ])
        lines = [t.render()]
        overheads = [
            r.storage_overhead for r in self.results if r.storage_overhead
        ]
        lines.append(
            f"aborted {self.aborted}/{len(self.results)}, "
            f"parent mismatches {self.mismatched}/{len(self.results)}, "
            f"storage overhead {max(overheads, default=0.0):.3f}x "
            f"(buddy: 2.000x), verdict "
            f"{'OK' if self.ok else 'FAILED'}"
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        cfg = self.config
        return json.dumps(
            {
                "config": {
                    "scale": cfg.scale,
                    "nodes": cfg.nodes,
                    "scenarios": cfg.scenarios,
                    "seed": cfg.seed,
                    "variant": cfg.variant,
                    "data_shards": cfg.data_shards,
                    "parity_shards": cfg.parity_shards,
                    "max_losses": cfg.max_losses,
                    "checkpoint_interval": cfg.checkpoint_interval,
                    "scrub_interval": cfg.scrub_interval,
                },
                "baseline_seconds": self.baseline_seconds,
                "aborted": self.aborted,
                "mismatched": self.mismatched,
                "ok": self.ok,
                "scenarios": [
                    {
                        "scenario": r.scenario,
                        "faults": list(r.faults),
                        "degraded": list(r.degraded),
                        "outcome": r.outcome,
                        "parents_match": r.parents_match,
                        "recoveries": r.recoveries,
                        "shards_lost": r.shards_lost,
                        "shards_rebuilt": r.shards_rebuilt,
                        "scrub_repairs": r.scrub_repairs,
                        "sim_seconds": r.sim_seconds,
                        "checkpoint_seconds": r.checkpoint_seconds,
                        "recovery_seconds": r.recovery_seconds,
                        "storage_overhead": r.storage_overhead,
                    }
                    for r in self.results
                ],
            },
            indent=2,
        )


def _draw_scenario(
    cfg: ChaosConfig, index: int, window: float
) -> tuple[NodeFaultPlan | None, DiskFaultPlan, tuple[str, ...], tuple[str, ...]]:
    """Seeded fault plans for scenario ``index``.

    Destructive faults (crash / disk loss / shard corruption) number at
    most the loss budget, hit distinct ranks, and fire inside the
    baseline's traversal window so they land mid-flight.
    """
    rng = substream(cfg.seed, "chaos", index)
    n_destructive = 1 + int(rng.integers(0, cfg.loss_budget))
    victims = rng.permutation(cfg.nodes)[:n_destructive]
    crash_at: dict[int, float] = {}
    lose_at: dict[int, float] = {}
    corrupt_at: dict[int, float] = {}
    labels: list[str] = []
    for rank in victims:
        kind = FAULT_KINDS[int(rng.integers(0, len(FAULT_KINDS)))]
        when = (0.1 + 0.8 * float(rng.random())) * window
        target = {"crash": crash_at, "disk-loss": lose_at, "corrupt": corrupt_at}
        target[kind][int(rank)] = when
        labels.append(f"{kind}@{int(rank)}")
    degrade: dict[int, float] = {}
    degraded: list[str] = []
    if float(rng.random()) < cfg.degrade_probability:
        rank = int(rng.integers(0, cfg.nodes))
        factor = 1.5 + 2.5 * float(rng.random())
        degrade[rank] = factor
        degraded.append(f"degrade@{rank}x{factor:.1f}")
    node_plan = NodeFaultPlan(crash_at=crash_at) if crash_at else None
    disk_plan = DiskFaultPlan(
        lose_at=lose_at, corrupt_at=corrupt_at, degrade=degrade
    )
    return node_plan, disk_plan, tuple(labels), tuple(degraded)


def run_campaign(cfg: ChaosConfig, telemetry=None) -> CampaignReport:
    """Run the campaign; every scenario is checked against the baseline."""
    from repro.baselines import make_variant  # late: heavy import chain

    edges = KroneckerGenerator(
        cfg.scale, cfg.edge_factor, seed=cfg.seed
    ).generate()
    graph = CSRGraph.from_edges(edges)
    root = int(np.asarray(sample_roots(edges, 1, seed=cfg.seed))[0])

    baseline_kernel = make_variant(
        cfg.variant,
        edges,
        cfg.nodes,
        nodes_per_super_node=cfg.nodes_per_super_node,
        graph=graph,
    )
    baseline = baseline_kernel.run(root)
    report = CampaignReport(config=cfg, baseline_seconds=baseline.sim_seconds)

    tel = telemetry if telemetry is not None and telemetry.enabled else None
    resilience = ResilienceConfig(
        reliable_transport=True,
        checkpoint_interval=cfg.checkpoint_interval,
        checkpoint_mode="rs",
        rs_data_shards=cfg.data_shards,
        rs_parity_shards=cfg.parity_shards,
        scrub_interval=cfg.scrub_interval,
        seed=cfg.seed,
    )
    for index in range(cfg.scenarios):
        node_plan, disk_plan, labels, degraded = _draw_scenario(
            cfg, index, baseline.sim_seconds
        )
        kernel = make_variant(
            cfg.variant,
            edges,
            cfg.nodes,
            nodes_per_super_node=cfg.nodes_per_super_node,
            resilience=resilience,
            graph=graph,
        )
        if node_plan is not None:
            NodeFaultInjector(kernel.cluster, node_plan)
        if disk_plan.any_faults:
            DiskFaultInjector(kernel, disk_plan, seed=cfg.seed + index)
        try:
            result = kernel.run(root)
        except SimulatedCrash:
            scenario = ScenarioResult(
                scenario=index,
                faults=labels,
                degraded=degraded,
                outcome="aborted",
                parents_match=False,
                recoveries=0,
                shards_lost=0,
                shards_rebuilt=0,
                scrub_repairs=0,
                sim_seconds=0.0,
                checkpoint_seconds=0.0,
                recovery_seconds=0.0,
                storage_overhead=0.0,
            )
        else:
            stats = result.stats
            raw = stats.get("checkpoint_raw_bytes", 0.0)
            scenario = ScenarioResult(
                scenario=index,
                faults=labels,
                degraded=degraded,
                outcome=(
                    "recovered" if stats.get("recoveries") else "clean"
                ),
                parents_match=bool(
                    np.array_equal(result.parent, baseline.parent)
                ),
                recoveries=int(stats.get("recoveries", 0)),
                shards_lost=int(stats.get("shards_lost", 0)),
                shards_rebuilt=int(stats.get("shards_rebuilt", 0)),
                scrub_repairs=int(stats.get("scrub_repairs", 0)),
                sim_seconds=result.sim_seconds,
                checkpoint_seconds=float(stats.get("checkpoint_seconds", 0.0)),
                recovery_seconds=float(stats.get("recovery_seconds", 0.0)),
                storage_overhead=(
                    float(stats.get("checkpoint_storage_bytes", 0.0)) / raw
                    if raw
                    else 0.0
                ),
            )
        report.results.append(scenario)
        if tel is not None:
            tel.metrics.counter(
                "chaos_scenarios", outcome=scenario.outcome
            ).add()
            tel.metrics.counter("chaos_shards_rebuilt").add(
                scenario.shards_rebuilt
            )
            tel.metrics.counter("chaos_scrub_repairs").add(
                scenario.scrub_repairs
            )
            tel.spans.record(
                f"scenario {index}",
                "chaos-scenario",
                0.0,
                max(scenario.sim_seconds, 1e-12),
                faults=", ".join(labels + degraded),
                outcome=scenario.outcome,
                parents_match=scenario.parents_match,
                recoveries=scenario.recoveries,
            )
    return report
