"""AST call-graph construction for the interprocedural analyzer.

One parse per file, two derived structures:

- a **function index**: every module-level function and class method,
  keyed by dotted qualname (``repro.core.bfs.DistributedBFS._mark``).
  Nested ``def``s are indexed under their enclosing function with an
  implicit contains-edge, so closures handed out as callbacks stay
  reachable from their builder;
- a **call-edge map** resolved with deliberately *conservative* rules.
  Exact resolution where the syntax allows it (local functions, imported
  symbols, ``self.method()`` against the enclosing class, ``Class.method``
  / ``Class(...)`` constructor calls); name-based resolution for everything
  else (``obj.method()`` adds an edge to every indexed method of that
  name). Over-approximating the callee set can only widen reachability —
  the safe direction for a safety analysis.

The builder also records the **dynamic route tables** of the partitioned
engine: every argument of a ``register_delivery(...)`` /
``register_injection(...)`` call is resolved and returned as a drain
root — the entry points whose events execute on parallel drain workers
(:mod:`repro.sim.partition`). ``register_drain_target`` names state for
the process codec and introduces no edges.

Known limitation (documented in docs/static-analysis.md): calls through
containers (``self._handlers[dst](msg)``) are invisible to the AST; the
syntactic REP107 lint still covers those callback bodies file-locally.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.analysis.effects import parse_effect_comment
from repro.sanitizers.determinism import iter_python_files

#: Engine methods whose call arguments are drain-context entry points.
ROUTE_REGISTRARS = frozenset({"register_delivery", "register_injection"})

#: A function that calls this pins the engine to serial drains; routes it
#: registers never run on parallel workers, so they are not drain roots.
PARALLEL_UNSAFE_MARKER = "mark_parallel_unsafe"

#: Ubiquitous builtin container/str method names, excluded from the
#: name-based fallback: an unresolvable ``self._entries.get(...)`` is a
#: dict lookup, not a call into every class that happens to define
#: ``get`` — resolving it by name would weld the catalog, the cache, and
#: every scheduler queue into one spurious blob of edges.
COMMON_METHOD_NAMES = frozenset(
    {
        "get", "pop", "popitem", "popleft", "append", "appendleft",
        "extend", "insert", "remove", "discard", "clear", "update",
        "setdefault", "keys", "values", "items", "copy", "sort",
        "reverse", "count", "index", "join", "split", "strip",
        "startswith", "endswith", "format", "encode", "decode", "read",
        "write", "close", "flush", "move_to_end", "rotate", "add",
        "notify", "notify_all", "put", "tolist", "astype", "item",
    }
)


def module_name(path: str) -> str:
    """Dotted module name for a file: anchored at the ``repro`` package
    when the path runs through one, else the bare stem (corpus files)."""
    parts = path.replace("\\", "/").split("/")
    stem = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
    if "repro" in parts[:-1]:
        idx = len(parts) - 2 - parts[-2::-1].index("repro")
        pkg = parts[idx:-1]
        return ".".join(pkg if stem == "__init__" else pkg + [stem])
    return stem


def display_path(path: str) -> str:
    """Stable, machine-independent rendering of a file path: anchored at
    ``repro/`` when possible, else the last two path components."""
    parts = path.replace("\\", "/").split("/")
    if "repro" in parts[:-1]:
        idx = len(parts) - 2 - parts[-2::-1].index("repro")
        return "/".join(parts[idx:])
    return "/".join(parts[-2:])


@dataclass
class FunctionInfo:
    """One indexed function/method and its analysis-relevant facts."""

    qualname: str
    module: str
    cls: str | None
    name: str
    path: str
    display: str
    lineno: int
    node: ast.FunctionDef | ast.AsyncFunctionDef
    effects: tuple[str, ...] = ()


@dataclass
class ModuleInfo:
    """One parsed file: names, classes, and raw lines (noqa lookups)."""

    path: str
    display: str
    module: str
    lines: list[str]
    #: Import alias -> fully dotted target ("np" -> "numpy",
    #: "make_variant" -> "repro.baselines.make_variant").
    imports: dict[str, str] = field(default_factory=dict)
    #: Top-level class name -> {method name -> qualname}.
    classes: dict[str, dict[str, str]] = field(default_factory=dict)
    #: Top-level function name -> qualname.
    functions: dict[str, str] = field(default_factory=dict)


@dataclass
class CallGraph:
    """The whole-program index the analysis passes run over."""

    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    modules: dict[str, ModuleInfo] = field(default_factory=dict)
    #: Caller qualname -> sorted callee qualnames.
    edges: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: Drain roots: qualnames registered through the engine route tables.
    roots: tuple[str, ...] = ()
    #: Method/function name -> sorted qualnames (name-based fallback).
    by_name: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: (display, lineno, message) for files that failed to parse.
    parse_errors: list[tuple[str, int, str]] = field(default_factory=list)

    def source_lines(self, info: FunctionInfo) -> list[str]:
        return self.modules[info.path].lines


def _iter_own_statements(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node`` without descending into nested def/class bodies."""
    stack = [node]
    first = True
    while stack:
        cur = stack.pop()
        if not first and isinstance(
            cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        first = False
        yield cur
        stack.extend(reversed(list(ast.iter_child_nodes(cur))))


def _decorator_effects(
    node: ast.FunctionDef | ast.AsyncFunctionDef, lines: list[str]
) -> tuple[str, ...]:
    """Effects from an ``@effects(...)`` decorator plus the def-line
    ``# repro: effect=...`` comment."""
    out: list[str] = []
    for dec in node.decorator_list:
        if isinstance(dec, ast.Call):
            target = dec.func
            name = target.attr if isinstance(target, ast.Attribute) else (
                target.id if isinstance(target, ast.Name) else None
            )
            if name == "effects":
                out.extend(
                    arg.value
                    for arg in dec.args
                    if isinstance(arg, ast.Constant) and isinstance(arg.value, str)
                )
    if 1 <= node.lineno <= len(lines):
        out.extend(parse_effect_comment(lines[node.lineno - 1]))
    return tuple(dict.fromkeys(out))


def _index_module(path: str, source: str, graph: CallGraph) -> None:
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        graph.parse_errors.append(
            (display_path(path), exc.lineno or 1, exc.msg or "syntax error")
        )
        return
    lines = source.splitlines()
    mod = ModuleInfo(path, display_path(path), module_name(path), lines)
    graph.modules[path] = mod

    def add_function(
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        qualname: str,
        cls: str | None,
    ) -> FunctionInfo:
        info = FunctionInfo(
            qualname=qualname,
            module=mod.module,
            cls=cls,
            name=node.name,
            path=path,
            display=mod.display,
            lineno=node.lineno,
            node=node,
            effects=_decorator_effects(node, lines),
        )
        graph.functions[qualname] = info
        return info

    def index_nested(
        parent: ast.FunctionDef | ast.AsyncFunctionDef,
        parent_qualname: str,
        cls: str | None,
    ) -> None:
        for child in ast.walk(parent):
            if child is parent:
                continue
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner_qual = f"{parent_qualname}.{child.name}"
                if inner_qual not in graph.functions:
                    add_function(child, inner_qual, cls)

    for stmt in tree.body:
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    mod.imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            else:
                base = stmt.module or ""
                for alias in stmt.names:
                    mod.imports[alias.asname or alias.name] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{mod.module}.{stmt.name}"
            mod.functions[stmt.name] = qual
            add_function(stmt, qual, None)
            index_nested(stmt, qual, None)
        elif isinstance(stmt, ast.ClassDef):
            methods: dict[str, str] = {}
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{mod.module}.{stmt.name}.{item.name}"
                    methods[item.name] = qual
                    add_function(item, qual, stmt.name)
                    index_nested(item, qual, stmt.name)
                # Function-scope imports (lazy kernel imports in the
                # catalog) also bind resolvable names.
            mod.classes[stmt.name] = methods


def _class_lookup(graph: CallGraph, mod: ModuleInfo, name: str) -> str | None:
    """Resolve ``name`` to a class key ``module.Class`` visible from
    ``mod`` (local class, imported class, or unique global class)."""
    if name in mod.classes:
        return f"{mod.module}.{name}"
    target = mod.imports.get(name)
    if target is not None:
        tmod, _, tname = target.rpartition(".")
        other = _module_by_name(graph, tmod)
        if other is not None and tname in other.classes:
            return f"{other.module}.{tname}"
    hits = sorted(
        f"{m.module}.{name}" for m in graph.modules.values() if name in m.classes
    )
    if len(hits) == 1:
        return hits[0]
    return None


def _module_by_name(graph: CallGraph, name: str) -> ModuleInfo | None:
    for m in graph.modules.values():
        if m.module == name:
            return m
    return None


def _resolve_call(
    graph: CallGraph,
    mod: ModuleInfo,
    info: FunctionInfo,
    call: ast.Call,
) -> set[str]:
    """Possible callee qualnames for one Call node (may be empty)."""
    out: set[str] = set()
    func = call.func
    if isinstance(func, ast.Name):
        name = func.id
        if name in mod.functions:
            out.add(mod.functions[name])
        elif name in mod.imports:
            target = mod.imports[name]
            if target in graph.functions:
                out.add(target)
            else:
                cls_key = _class_lookup(graph, mod, name)
                if cls_key is not None and f"{cls_key}.__init__" in graph.functions:
                    out.add(f"{cls_key}.__init__")
        else:
            cls_key = _class_lookup(graph, mod, name)
            if cls_key is not None and f"{cls_key}.__init__" in graph.functions:
                out.add(f"{cls_key}.__init__")
            elif info.cls is not None and name not in COMMON_METHOD_NAMES:
                # A bare name inside a method may be a function-scope
                # import (the catalog's lazy kernel imports).
                hits = graph.by_name.get(name, ())
                out.update(q for q in hits if graph.functions[q].cls is None)
    elif isinstance(func, ast.Attribute):
        attr = func.attr
        recv = func.value
        if isinstance(recv, ast.Name) and recv.id in ("self", "cls"):
            if info.cls is not None:
                own = mod.classes.get(info.cls, {})
                if attr in own:
                    out.add(own[attr])
                    return out
            if attr not in COMMON_METHOD_NAMES:
                out.update(graph.by_name.get(attr, ()))
        elif isinstance(recv, ast.Name):
            cls_key = _class_lookup(graph, mod, recv.id)
            if cls_key is not None:
                cmod, _, cname = cls_key.rpartition(".")
                other = _module_by_name(graph, cmod)
                if other is not None and attr in other.classes.get(cname, {}):
                    out.add(other.classes[cname][attr])
                    return out
            if recv.id in mod.imports and recv.id not in graph.by_name:
                # Module alias (``np.argsort``): out of scanned scope.
                return out
            if attr not in COMMON_METHOD_NAMES:
                out.update(
                    q for q in graph.by_name.get(attr, ())
                    if graph.functions[q].cls is not None
                )
        else:
            # Generic receiver: name-based over indexed methods only.
            if attr not in COMMON_METHOD_NAMES:
                out.update(
                    q for q in graph.by_name.get(attr, ())
                    if graph.functions[q].cls is not None
                )
    return out


def _resolve_route_arg(
    graph: CallGraph, mod: ModuleInfo, info: FunctionInfo, arg: ast.AST
) -> set[str]:
    """Resolve a ``register_delivery``/``register_injection`` argument."""
    out: set[str] = set()
    if isinstance(arg, ast.Attribute):
        attr = arg.attr
        recv = arg.value
        if isinstance(recv, ast.Name) and recv.id not in ("self", "cls"):
            cls_key = _class_lookup(graph, mod, recv.id)
            if cls_key is not None:
                cmod, _, cname = cls_key.rpartition(".")
                other = _module_by_name(graph, cmod)
                if other is not None and attr in other.classes.get(cname, {}):
                    out.add(other.classes[cname][attr])
                    return out
        if isinstance(recv, ast.Name) and recv.id in ("self", "cls"):
            if info.cls is not None:
                own = mod.classes.get(info.cls, {})
                if attr in own:
                    out.add(own[attr])
                    return out
        # ``type(cluster)._deliver``-style receivers: fall back to every
        # indexed method of that name — over-approximation is safe here.
        out.update(
            q for q in graph.by_name.get(attr, ())
            if graph.functions[q].cls is not None
        )
    elif isinstance(arg, ast.Name):
        if arg.id in mod.functions:
            out.add(mod.functions[arg.id])
        else:
            out.update(graph.by_name.get(arg.id, ()))
    return out


def build_callgraph(paths: list[str]) -> CallGraph:
    """Parse every ``.py`` under ``paths`` and build the program index,
    call edges, and drain roots."""
    graph = CallGraph()
    for path in iter_python_files(paths):
        with open(path, encoding="utf-8") as fh:
            _index_module(path, fh.read(), graph)

    by_name: dict[str, set[str]] = {}
    for qual, info in graph.functions.items():
        by_name.setdefault(info.name, set()).add(qual)
    graph.by_name = {
        name: tuple(sorted(quals)) for name, quals in sorted(by_name.items())
    }

    roots: set[str] = set()
    for qual, info in sorted(graph.functions.items()):
        mod = graph.modules[info.path]
        callees: set[str] = set()
        # Contains-edges to nested defs (closures handed out as callbacks).
        prefix = qual + "."
        callees.update(
            q for q in graph.functions
            if q.startswith(prefix) and "." not in q[len(prefix):]
        )
        own_roots: set[str] = set()
        marks_unsafe = False
        for node in _iter_own_statements(info.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            reg = (
                func.attr if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name) else None
            )
            if reg in ROUTE_REGISTRARS and node.args:
                own_roots.update(
                    _resolve_route_arg(graph, mod, info, node.args[0])
                )
            elif reg == PARALLEL_UNSAFE_MARKER:
                marks_unsafe = True
            callees.update(_resolve_call(graph, mod, info, node))
        if not marks_unsafe:
            # A registrar that also pins the engine serial (the reliable
            # transport) never sees its routes on parallel workers.
            roots.update(own_roots)
        callees.discard(qual)
        graph.edges[qual] = tuple(sorted(callees))
    graph.roots = tuple(sorted(roots))
    return graph
