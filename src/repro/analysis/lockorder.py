"""Lock-order and blocking-under-lock analysis.

The service and telemetry layers hold a small, named set of locks
(catalog ``_lock`` / ``_kernel_lock``, cache ``_lock``, scheduler
``_cv``, client ``_lock``, metrics ``_create_lock``). Two properties
keep them deadlock- and convoy-free, and this pass checks both:

- **REP202 (lock-order-cycle)**: the lock-acquisition graph — an edge
  ``A -> B`` whenever ``B`` is acquired (directly or through a call
  chain) while ``A`` is held — must be acyclic. A cycle is a potential
  deadlock the moment two threads walk it from different ends.
- **REP203 (blocking-under-lock)**: no blocking operation (socket I/O,
  kernel construction/execution, ``Condition.wait`` on a *different*
  lock, sleeps, joins, future waits) while holding a *fast* lock — one
  every admission/lookup crosses (``GraphCatalog._lock``,
  ``ResultCache._lock``). Locks that exist precisely to serialise
  blocking work are excluded by policy: ``CatalogEntry._kernel_lock``
  (kernel construction is its job), ``ServiceClient._lock`` (serialises
  socket I/O per connection), and a condition's own ``wait`` (the
  condition protocol releases the lock while waiting).

Lock identity is inferred from the AST — ``self.X = threading.Lock() /
RLock() / Condition()`` in a class body names lock ``Class.X`` — so the
pass needs no registry edits when a new lock appears. Non-``self``
acquisitions (``entry._kernel_lock``) resolve by attribute name when it
is unique across the inferred registry.

Scope: modules under ``repro.service`` / ``repro.telemetry`` (where the
named locks live) plus any scanned file outside the ``repro`` package
(the seeded violation corpus).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.callgraph import (
    CallGraph,
    FunctionInfo,
    _iter_own_statements,
)
from repro.sanitizers.determinism import _KERNEL_CONSTRUCTORS

#: Callable names treated as blocking under a fast lock.
BLOCKING_ATTRS = frozenset(
    {
        # socket I/O
        "sendall", "send", "recv", "recv_into", "accept", "connect",
        "create_connection", "recv_frame",
        # kernel construction / execution
        "run", "execute", "make_variant",
        # waits
        "wait", "wait_for", "sleep", "join", "result", "acquire",
    }
)

#: Bare-name calls treated as blocking (kernel constructors come from
#: the syntactic lint so the two rule bands agree on the set).
BLOCKING_NAMES = frozenset({"sleep", "create_connection"}) | _KERNEL_CONSTRUCTORS

#: Lock constructor names (``threading.X()`` or bare after import).
_LOCK_CTORS = frozenset({"Lock", "RLock", "Condition", "Semaphore"})


def _lock_scope(info: FunctionInfo) -> bool:
    mod = info.module
    return (
        mod.startswith(("repro.service", "repro.telemetry"))
        or not mod.startswith("repro")
    )


def is_fast_lock(lock_id: str) -> bool:
    """Whether ``lock_id`` is a fast lock (no blocking allowed under it):
    an attribute named ``_lock`` on a catalog or cache class."""
    cls, _, attr = lock_id.rpartition(".")
    return attr == "_lock" and (cls.endswith("Catalog") or cls.endswith("Cache"))


@dataclass(frozen=True)
class LockEdge:
    """``held`` is locked when ``acquired`` is taken at ``display:line``
    (``via`` names the call chain hop, empty for a nested ``with``)."""

    held: str
    acquired: str
    display: str
    line: int
    via: str


@dataclass(frozen=True)
class BlockingSite:
    """A blocking operation at ``display:line`` while ``held`` is locked."""

    held: str
    operation: str
    display: str
    line: int
    via: str


def _ctor_lock_name(value: ast.AST) -> bool:
    """Whether ``value`` is a ``threading.Lock()``-style constructor call."""
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Attribute):
        return func.attr in _LOCK_CTORS
    if isinstance(func, ast.Name):
        return func.id in _LOCK_CTORS
    return False


def build_lock_registry(graph: CallGraph) -> dict[str, tuple[str, ...]]:
    """Inferred locks: ``{attr: sorted lock ids}`` — e.g.
    ``{"_lock": ("GraphCatalog._lock", "ResultCache._lock"), ...}``."""
    by_attr: dict[str, set[str]] = {}
    for info in graph.functions.values():
        if info.cls is None or not _lock_scope(info):
            continue
        for node in _iter_own_statements(info.node):
            if not isinstance(node, ast.Assign) or not _ctor_lock_name(node.value):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    by_attr.setdefault(target.attr, set()).add(
                        f"{info.cls}.{target.attr}"
                    )
    return {attr: tuple(sorted(ids)) for attr, ids in sorted(by_attr.items())}


class _LockAnalysis:
    """Per-program fixpoint state for the two lock rules."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.registry = build_lock_registry(graph)
        self.scope = {
            q: info for q, info in graph.functions.items() if _lock_scope(info)
        }
        #: Locks a function acquires somewhere in its body.
        self.direct: dict[str, set[str]] = {}
        #: Locks a function (transitively) may acquire when called.
        self.trans: dict[str, set[str]] = {}
        #: Blocking ops a function (transitively) may perform:
        #: qualname -> sorted (operation, display, line).
        self.blocks: dict[str, set[tuple[str, str, int]]] = {}

    # -- lock identity ---------------------------------------------------------
    def lock_of(self, expr: ast.AST, info: FunctionInfo) -> str | None:
        """The lock id a ``with`` context expression names, if any."""
        if not isinstance(expr, ast.Attribute):
            return None
        attr = expr.attr
        candidates = self.registry.get(attr)
        if not candidates:
            return None
        recv = expr.value
        if isinstance(recv, ast.Name) and recv.id == "self" and info.cls is not None:
            own = f"{info.cls}.{attr}"
            if own in candidates:
                return own
            return None
        # Non-self receiver: unambiguous attribute names only.
        if len(candidates) == 1:
            return candidates[0]
        return None

    # -- per-function direct facts ----------------------------------------------
    def _scan_function(self, qual: str) -> None:
        info = self.scope[qual]
        acquired: set[str] = set()
        blocking: set[tuple[str, str, int]] = set()
        for node in _iter_own_statements(info.node):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    lock = self.lock_of(item.context_expr, info)
                    if lock is not None:
                        acquired.add(lock)
            elif isinstance(node, ast.Call):
                op = self._blocking_name(node, info)
                if op is not None:
                    blocking.add((op, info.display, node.lineno))
        self.direct[qual] = acquired
        self.blocks[qual] = blocking

    def _blocking_name(self, call: ast.Call, info: FunctionInfo) -> str | None:
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "join"
            and call.args
        ):
            # str.join / bytes.join take the iterable positionally;
            # Thread.join takes at most a timeout keyword.
            return None
        if isinstance(func, ast.Attribute) and func.attr in BLOCKING_ATTRS:
            # ``self._cv.wait()`` blocks, but it is the condition
            # protocol when the receiver IS a held lock — the caller-side
            # same-lock exemption in _check_blocking handles that; here we
            # just name the operation.
            return func.attr
        if isinstance(func, ast.Name) and func.id in BLOCKING_NAMES:
            return func.id
        return None

    # -- fixpoints ---------------------------------------------------------------
    def _fixpoint(self) -> None:
        for qual in self.scope:
            self._scan_function(qual)
        self.trans = {q: set(s) for q, s in self.direct.items()}
        trans_blocks = {q: set(s) for q, s in self.blocks.items()}
        changed = True
        while changed:
            changed = False
            for qual in self.scope:
                for callee in self.graph.edges.get(qual, ()):
                    if callee not in self.scope:
                        continue
                    before = len(self.trans[qual])
                    self.trans[qual] |= self.trans.get(callee, set())
                    if len(self.trans[qual]) != before:
                        changed = True
                    before_b = len(trans_blocks[qual])
                    trans_blocks[qual] |= trans_blocks.get(callee, set())
                    if len(trans_blocks[qual]) != before_b:
                        changed = True
        self.trans_blocks = trans_blocks

    # -- reporting passes --------------------------------------------------------
    def edges_and_blocking(self) -> tuple[list[LockEdge], list[BlockingSite]]:
        self._fixpoint()
        edges: set[LockEdge] = set()
        blocking: set[BlockingSite] = set()
        for qual in sorted(self.scope):
            info = self.scope[qual]
            self._walk_with(info.node, info, (), edges, blocking)
        return (
            sorted(edges, key=lambda e: (e.held, e.acquired, e.display, e.line)),
            sorted(
                blocking,
                key=lambda b: (b.held, b.display, b.line, b.operation),
            ),
        )

    def _walk_with(
        self,
        node: ast.AST,
        info: FunctionInfo,
        held: tuple[str, ...],
        edges: set[LockEdge],
        blocking: set[BlockingSite],
    ) -> None:
        """Recursive walk tracking the held-lock stack through ``with``
        bodies (without descending into nested defs)."""
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
            ):
                continue
            if isinstance(child, (ast.With, ast.AsyncWith)):
                inner = held
                for item in child.items:
                    lock = self.lock_of(item.context_expr, info)
                    if lock is not None:
                        for outer in inner:
                            edges.add(
                                LockEdge(
                                    outer, lock, info.display,
                                    child.lineno, "",
                                )
                            )
                        inner = inner + (lock,)
                for stmt in child.body:
                    self._walk_with(stmt, info, inner, edges, blocking)
                    self._visit_holding(stmt, info, inner, edges, blocking)
                continue
            self._visit_holding(child, info, held, edges, blocking)
            self._walk_with(child, info, held, edges, blocking)

    def _visit_holding(
        self,
        node: ast.AST,
        info: FunctionInfo,
        held: tuple[str, ...],
        edges: set[LockEdge],
        blocking: set[BlockingSite],
    ) -> None:
        """Record call-derived lock edges and blocking ops at ``node``
        while ``held`` locks are taken."""
        if not held or not isinstance(node, ast.Call):
            return
        func = node.func
        # Direct blocking operation under a fast lock.
        op = self._blocking_name(node, info)
        if op is not None:
            same_lock = (
                op in ("wait", "wait_for", "acquire")
                and isinstance(func, ast.Attribute)
                and self._receiver_lock(func.value, info) == held[-1]
            )
            if not same_lock:
                for lock in held:
                    if is_fast_lock(lock):
                        blocking.add(
                            BlockingSite(
                                lock, op, info.display, node.lineno, ""
                            )
                        )
        # Call-derived facts: locks and blocking ops of the callee chain.
        callees = self._callees_at(node, info)
        for callee in callees:
            if callee not in self.scope:
                continue
            for lock in sorted(self.trans.get(callee, ())):
                for outer in held:
                    if outer != lock:
                        edges.add(
                            LockEdge(
                                outer, lock, info.display,
                                node.lineno, callee,
                            )
                        )
            for op_name, disp, line in sorted(self.trans_blocks.get(callee, ())):
                for lock in held:
                    if is_fast_lock(lock):
                        blocking.add(
                            BlockingSite(lock, op_name, disp, line, callee)
                        )

    def _receiver_lock(self, recv: ast.AST, info: FunctionInfo) -> str | None:
        return self.lock_of(recv, info) if isinstance(recv, ast.Attribute) else None

    def _callees_at(self, call: ast.Call, info: FunctionInfo) -> tuple[str, ...]:
        from repro.analysis.callgraph import _resolve_call

        mod = self.graph.modules[info.path]
        return tuple(sorted(_resolve_call(self.graph, mod, info, call)))


def find_lock_cycles(
    edges: list[LockEdge],
) -> list[tuple[tuple[str, ...], tuple[LockEdge, ...]]]:
    """Cycles in the lock-acquisition graph, canonicalised (each cycle
    rotated to start at its smallest lock id) and deduplicated."""
    adj: dict[str, dict[str, LockEdge]] = {}
    for edge in edges:
        adj.setdefault(edge.held, {}).setdefault(edge.acquired, edge)
    cycles: dict[tuple[str, ...], tuple[LockEdge, ...]] = {}

    def dfs(start: str, node: str, path: list[str]) -> None:
        for nxt in sorted(adj.get(node, ())):
            if nxt == start:
                cycle = tuple(path)
                pivot = cycle.index(min(cycle))
                canon = cycle[pivot:] + cycle[:pivot]
                if canon not in cycles:
                    ring = canon + (canon[0],)
                    cycles[canon] = tuple(
                        adj[a][b] for a, b in zip(ring, ring[1:])
                    )
            elif nxt not in path and nxt > start:
                # Only explore nodes > start so each cycle is found once,
                # from its smallest member.
                dfs(start, nxt, path + [nxt])

    for start in sorted(adj):
        dfs(start, start, [start])
    # Self-loops (lock re-acquired under itself) are cycles of length 1.
    for edge in edges:
        if edge.held == edge.acquired:
            cycles.setdefault((edge.held,), (edge,))
    return sorted(cycles.items())


def analyze_locks(
    graph: CallGraph,
) -> tuple[
    list[LockEdge],
    list[tuple[tuple[str, ...], tuple[LockEdge, ...]]],
    list[BlockingSite],
]:
    """The full lock pass: (acquisition edges, cycles, blocking sites)."""
    analysis = _LockAnalysis(graph)
    edges, blocking = analysis.edges_and_blocking()
    return edges, find_lock_cycles(edges), blocking
