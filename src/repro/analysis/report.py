"""Findings, stable IDs, baseline, and the ``repro analyze`` entry point.

A finding's **stable id** is a short hash of ``rule | path | function |
detail`` — deliberately *not* the line number, so a baselined finding
survives unrelated edits above it. The committed baseline file
(``analysis-baseline.json``, discovered by walking up from the analyzed
path) suppresses known findings by id; suppressed-but-absent baseline
entries are reported so the file cannot rot silently.

Output formats: human text, deterministic JSON (two runs over the same
tree are byte-identical — the determinism tests pin this), and SARIF
via the shared exporter in :mod:`repro.sanitizers.sarif`.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
from dataclasses import dataclass, field

from repro.analysis.callgraph import CallGraph, FunctionInfo, build_callgraph
from repro.analysis.drain import body_mentions_journal, find_drain_violations
from repro.analysis.effects import is_valid_effect, locked_target
from repro.analysis.lockorder import (
    BlockingSite,
    LockEdge,
    _LockAnalysis,
    analyze_locks,
)
from repro.sanitizers.determinism import _dotted_name
from repro.sanitizers.rules import Rule, parse_noqa
from repro.sanitizers.sarif import sarif_document

#: The interprocedural rule band (REP2xx; the syntactic lint owns REP1xx).
ANALYSIS_RULES: dict[str, Rule] = {
    r.id: r
    for r in (
        Rule(
            "REP200",
            "analysis-parse-error",
            "file does not parse; the analyzer cannot vouch for it",
            "repro",
        ),
        Rule(
            "REP201",
            "drain-unjournaled-mutation",
            "shared engine/cluster-handle store inside a function reachable "
            "from a registered drain route (delivery/injection); under "
            "parallel drain the store races across lanes unless it goes "
            "through the journal API — the interprocedural upgrade of REP107",
            "repro",
        ),
        Rule(
            "REP202",
            "lock-order-cycle",
            "cycle in the lock-acquisition graph (lock B taken while A is "
            "held and, elsewhere, A while B is held) — a potential deadlock "
            "the moment two threads walk the cycle from different ends",
            "repro",
        ),
        Rule(
            "REP203",
            "blocking-under-lock",
            "blocking operation (socket I/O, kernel construction/execution, "
            "Condition.wait on another lock, sleep/join/result) while "
            "holding a fast catalog/cache lock that every admission and "
            "lookup crosses",
            "repro",
        ),
        Rule(
            "REP204",
            "effect-annotation-mismatch",
            "an @effects(...) / '# repro: effect=' declaration the AST "
            "contradicts (a 'pure' function that stores or blocks, a "
            "'journaled' function that never touches the journal, a "
            "'locked:<name>' function that does not acquire the named lock)",
            "repro",
        ),
    )
}


@dataclass(frozen=True)
class AnalysisFinding:
    """One analyzer finding with a line-number-independent stable id."""

    rule: str
    path: str
    line: int
    col: int
    function: str
    message: str
    #: Stable discriminator (no line numbers): what the finding is about,
    #: not where it currently sits.
    detail: str
    chain: tuple[str, ...] = ()

    @property
    def fid(self) -> str:
        digest = hashlib.sha1(
            f"{self.rule}|{self.path}|{self.function}|{self.detail}".encode()
        )
        return digest.hexdigest()[:12]

    def render(self) -> str:
        loc = f"{self.path}:{self.line}:{self.col}"
        head = f"{loc}: {self.rule} [{self.fid}] {self.message}"
        if self.chain:
            head += f"\n    via {' -> '.join(self.chain)}"
        return head

    def to_dict(self) -> dict:
        out = {
            "id": self.fid,
            "rule": self.rule,
            "name": ANALYSIS_RULES[self.rule].name
            if self.rule in ANALYSIS_RULES
            else "",
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "function": self.function,
            "message": self.message,
            "detail": self.detail,
        }
        if self.chain:
            out["chain"] = list(self.chain)
        return out


@dataclass
class AnalysisReport:
    """Everything ``repro analyze`` learned, ready to render or gate on."""

    findings: list[AnalysisFinding] = field(default_factory=list)
    baselined: list[AnalysisFinding] = field(default_factory=list)
    suppressed: int = 0
    checked_files: int = 0
    functions: int = 0
    roots: tuple[str, ...] = ()
    lock_edges: list[LockEdge] = field(default_factory=list)
    #: Baseline ids that matched nothing this run (stale entries).
    stale_baseline: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.rule] = out.get(f.rule, 0) + 1
        return out

    def render_text(self) -> str:
        lines = [f.render() for f in self.findings]
        lines.append(
            f"{len(self.findings)} finding(s) in {self.checked_files} "
            f"file(s), {self.functions} function(s) indexed, "
            f"{len(self.roots)} drain root(s), "
            f"{len(self.lock_edges)} lock edge(s) "
            f"({len(self.baselined)} baselined, {self.suppressed} suppressed)"
        )
        if self.stale_baseline:
            lines.append(
                "stale baseline ids (matched nothing): "
                + ", ".join(self.stale_baseline)
            )
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "ok": self.ok,
                "checked_files": self.checked_files,
                "functions": self.functions,
                "drain_roots": list(self.roots),
                "lock_edges": [
                    {
                        "held": e.held,
                        "acquired": e.acquired,
                        "path": e.display,
                        "line": e.line,
                        "via": e.via,
                    }
                    for e in self.lock_edges
                ],
                "counts": self.counts(),
                "suppressed": self.suppressed,
                "baselined": [f.fid for f in self.baselined],
                "stale_baseline": list(self.stale_baseline),
                "findings": [f.to_dict() for f in self.findings],
            },
            indent=2,
            sort_keys=True,
        )

    def to_sarif(self) -> str:
        return sarif_document(
            tool_name="repro-analyze",
            rules=[
                {"id": r.id, "name": r.name, "summary": r.summary}
                for r in ANALYSIS_RULES.values()
            ],
            results=[
                {
                    "rule": f.rule,
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                    "message": f.message,
                }
                for f in self.findings
            ],
        )


# -- baseline ------------------------------------------------------------------
BASELINE_NAME = "analysis-baseline.json"


def load_baseline(path: str) -> dict[str, dict]:
    """``{finding id: entry}`` from a baseline file."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    out: dict[str, dict] = {}
    for entry in doc.get("suppress", []):
        out[entry["id"]] = entry
    return out


def write_baseline(path: str, report: AnalysisReport) -> None:
    """Write every current finding (baselined or not) as suppressed."""
    entries = [
        {
            "id": f.fid,
            "rule": f.rule,
            "path": f.path,
            "function": f.function,
            "detail": f.detail,
        }
        for f in sorted(
            report.findings + report.baselined,
            key=lambda f: (f.path, f.rule, f.fid),
        )
    ]
    doc = {"version": 1, "suppress": entries}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def default_baseline_path(paths: list[str]) -> str | None:
    """Walk upward from the first analyzed path looking for the
    committed baseline file."""
    if not paths:
        return None
    cur = os.path.abspath(paths[0])
    if os.path.isfile(cur):
        cur = os.path.dirname(cur)
    for _ in range(8):
        candidate = os.path.join(cur, BASELINE_NAME)
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(cur)
        if parent == cur:
            break
        cur = parent
    return None


# -- the passes ----------------------------------------------------------------
def _line_suppressed(
    lines_by_display: dict[str, list[str]], display: str, line: int, rule: str
) -> bool:
    lines = lines_by_display.get(display)
    if lines is None or not 1 <= line <= len(lines):
        return False
    suppressions = parse_noqa(lines[line - 1])
    if suppressions is None:
        return False
    return not suppressions or rule in suppressions


def _effect_findings(graph: CallGraph) -> list[AnalysisFinding]:
    analysis = _LockAnalysis(graph)
    out: list[AnalysisFinding] = []
    for qual in sorted(graph.functions):
        info = graph.functions[qual]
        for spec in info.effects:
            if not is_valid_effect(spec):
                out.append(
                    AnalysisFinding(
                        "REP204", info.display, info.lineno, 1, qual,
                        f"unknown effect {spec!r}", f"invalid:{spec}",
                    )
                )
                continue
            if spec == "pure":
                reason = _impure_reason(info, analysis)
                if reason is not None:
                    out.append(
                        AnalysisFinding(
                            "REP204", info.display, info.lineno, 1, qual,
                            f"declared pure but {reason}", "pure",
                        )
                    )
            elif spec == "journaled":
                if not body_mentions_journal(info):
                    out.append(
                        AnalysisFinding(
                            "REP204", info.display, info.lineno, 1, qual,
                            "declared journaled but never references the "
                            "drain journal machinery",
                            "journaled",
                        )
                    )
            else:
                lock = locked_target(spec)
                if lock is not None and not _acquires_named_lock(
                    info, analysis, lock
                ):
                    out.append(
                        AnalysisFinding(
                            "REP204", info.display, info.lineno, 1, qual,
                            f"declared locked:{lock} but never acquires it",
                            f"locked:{lock}",
                        )
                    )
    return out


def _impure_reason(info: FunctionInfo, analysis: _LockAnalysis) -> str | None:
    from repro.analysis.callgraph import _iter_own_statements

    for node in _iter_own_statements(info.node):
        if isinstance(node, (ast.Assign, ast.AugAssign)) or (
            isinstance(node, ast.AnnAssign) and node.value is not None
        ):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    return "stores to an attribute/container"
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if analysis.lock_of(item.context_expr, info) is not None:
                    return "acquires a lock"
        if isinstance(node, ast.Call):
            # Same operation set (and str.join exemption) as REP203.
            op = analysis._blocking_name(node, info)
            if op is not None:
                return f"performs blocking call .{op}()"
    return None


def _acquires_named_lock(
    info: FunctionInfo, analysis: _LockAnalysis, lock: str
) -> bool:
    from repro.analysis.callgraph import _iter_own_statements

    for node in _iter_own_statements(info.node):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                found = analysis.lock_of(item.context_expr, info)
                if found is not None and (
                    found == lock or found.endswith(f".{lock}") or
                    found.rpartition(".")[2] == lock
                ):
                    return True
    return False


def analyze_paths(
    paths: list[str], baseline: dict[str, dict] | None = None
) -> AnalysisReport:
    """Run every pass over the tree and fold in the baseline."""
    graph = build_callgraph(paths)
    lines_by_display = {
        m.display: m.lines for m in graph.modules.values()
    }
    findings: list[AnalysisFinding] = []
    suppressed = 0

    for display, lineno, msg in graph.parse_errors:
        findings.append(
            AnalysisFinding(
                "REP200", display, lineno, 1, "",
                f"file does not parse: {msg}", msg,
            )
        )

    # Pass 1: drain-context reachability (REP201).
    for info, leaf, handle, chain in find_drain_violations(graph):
        target = _dotted_name(leaf) or handle
        findings.append(
            AnalysisFinding(
                "REP201",
                info.display,
                getattr(leaf, "lineno", info.lineno),
                getattr(leaf, "col_offset", 0) + 1,
                info.qualname,
                f"store through shared .{handle} handle in drain-reachable "
                f"function (reached from {chain[0]}); route it through the "
                "drain journal API",
                f"{handle}:{target}",
                chain=chain,
            )
        )

    # Pass 2: lock order + blocking-under-lock (REP202/REP203).
    lock_edges, cycles, blocking = analyze_locks(graph)
    for cycle_locks, cycle_edges in cycles:
        first = cycle_edges[0]
        ring = " -> ".join(cycle_locks + (cycle_locks[0],))
        sites = "; ".join(
            f"{e.held}->{e.acquired} at {e.display}:{e.line}"
            + (f" via {e.via}" if e.via else "")
            for e in cycle_edges
        )
        findings.append(
            AnalysisFinding(
                "REP202", first.display, first.line, 1, "",
                f"lock-order cycle {ring} ({sites})",
                "cycle:" + "->".join(cycle_locks),
            )
        )
    for site in blocking:
        findings.append(
            AnalysisFinding(
                "REP203", site.display, site.line, 1, site.via,
                f"blocking operation .{site.operation}() while holding "
                f"{site.held}"
                + (f" (reached via {site.via})" if site.via else ""),
                f"{site.held}:{site.operation}:{site.via}",
            )
        )

    # Pass 3: effect-annotation validation (REP204).
    findings.extend(_effect_findings(graph))

    # Per-line noqa suppressions, shared with the lint.
    kept: list[AnalysisFinding] = []
    for f in findings:
        if _line_suppressed(lines_by_display, f.path, f.line, f.rule):
            suppressed += 1
        else:
            kept.append(f)
    kept.sort(key=lambda f: (f.path, f.line, f.rule, f.fid))

    report = AnalysisReport(
        findings=kept,
        suppressed=suppressed,
        checked_files=len(graph.modules) + len(graph.parse_errors),
        functions=len(graph.functions),
        roots=graph.roots,
        lock_edges=lock_edges,
    )
    if baseline:
        still: list[AnalysisFinding] = []
        hit: set[str] = set()
        for f in report.findings:
            if f.fid in baseline:
                report.baselined.append(f)
                hit.add(f.fid)
            else:
                still.append(f)
        report.findings = still
        report.stale_baseline = tuple(sorted(set(baseline) - hit))
    return report


__all__ = [
    "ANALYSIS_RULES",
    "AnalysisFinding",
    "AnalysisReport",
    "BASELINE_NAME",
    "BlockingSite",
    "LockEdge",
    "analyze_paths",
    "default_baseline_path",
    "load_baseline",
    "write_baseline",
]
