"""Interprocedural parallel-safety and lock-discipline analysis.

Where :mod:`repro.sanitizers` lints one file at a time, this package
builds a whole-program call graph over the scanned tree and runs three
interprocedural passes on it:

- **drain reachability** (REP201): shared-state mutations reachable from
  the engine's registered delivery/injection routes that do not go
  through a journal-aware sink — the cross-module upgrade of REP107;
- **lock order** (REP202/REP203): cycles in the inferred
  lock-acquisition graph, and blocking operations performed while a
  catalog/cache fast lock is held;
- **effect validation** (REP204): ``@effects(...)`` decorators and
  ``# repro: effect=`` comments checked against inferred behaviour.

Entry point: :func:`analyze_paths` (CLI: ``repro analyze``). Findings
carry stable content-derived ids so a committed baseline file survives
unrelated edits.
"""

from repro.analysis.callgraph import CallGraph, FunctionInfo, build_callgraph
from repro.analysis.effects import (
    EFFECTS_ATTR,
    declared_effects,
    effects,
    is_valid_effect,
    parse_effect_comment,
)
from repro.analysis.lockorder import (
    BlockingSite,
    LockEdge,
    analyze_locks,
    build_lock_registry,
    find_lock_cycles,
    is_fast_lock,
)
from repro.analysis.report import (
    ANALYSIS_RULES,
    BASELINE_NAME,
    AnalysisFinding,
    AnalysisReport,
    analyze_paths,
    default_baseline_path,
    load_baseline,
    write_baseline,
)

__all__ = [
    "ANALYSIS_RULES",
    "AnalysisFinding",
    "AnalysisReport",
    "BASELINE_NAME",
    "BlockingSite",
    "CallGraph",
    "EFFECTS_ATTR",
    "FunctionInfo",
    "LockEdge",
    "analyze_locks",
    "analyze_paths",
    "build_callgraph",
    "build_lock_registry",
    "declared_effects",
    "default_baseline_path",
    "effects",
    "find_lock_cycles",
    "is_fast_lock",
    "is_valid_effect",
    "load_baseline",
    "parse_effect_comment",
    "write_baseline",
]
