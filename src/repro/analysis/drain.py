"""Drain-context reachability: the interprocedural upgrade of REP107.

Under parallel drain (``drain_workers > 1``) every event callback routed
through the engine's delivery/injection tables executes on a worker
thread. The syntactic REP107 lint flags shared-handle stores
(``x.engine.attr = ...``) one file at a time; this pass computes the set
of functions *reachable* from the registered routes — across modules,
across scopes, through any number of call hops — and flags every
unjournaled shared-handle store inside that set (rule REP201), reporting
the call chain from the root that reaches it.

Traversal stops at journal-aware sinks: functions that are annotated
``journaled`` (:mod:`repro.analysis.effects`) or whose body references
the drain journal machinery (``journal`` / ``_DRAIN_SINK`` /
``fold_max`` / ``fold_add`` / ``metric_op`` / ``span_op``) are trusted
to route their mutations through the journal — that trust is exactly
what REP204 effect validation and the parallel-drain parity gates in CI
are for. Files exempt from REP107 (the journal implementation itself in
``repro/sim/partition.py``, the fault interposers in
``repro/sim/faults.py``) are exempt here for the same reasons.
"""

from __future__ import annotations

import ast
from collections import deque

from repro.analysis.callgraph import (
    CallGraph,
    FunctionInfo,
    _iter_own_statements,
)
from repro.sanitizers.determinism import (
    _flatten_store_targets,
    _store_shared_handle,
)
from repro.sanitizers.rules import RULE_EXEMPT_FILES

#: Identifiers whose presence marks a function as journal-aware: it
#: either consults the thread-local journal or emits journal ops.
_JOURNAL_MARKERS = frozenset(
    {"journal", "_DRAIN_SINK", "fold_max", "fold_add", "metric_op", "span_op"}
)


def body_mentions_journal(info: FunctionInfo) -> bool:
    """Whether the journal machinery appears in the function's own body."""
    for node in _iter_own_statements(info.node):
        if isinstance(node, ast.Name) and node.id in _JOURNAL_MARKERS:
            return True
        if isinstance(node, ast.Attribute) and node.attr in _JOURNAL_MARKERS:
            return True
    return False


def is_journal_aware(info: FunctionInfo) -> bool:
    """Whether the function is a journal-aware sink (annotation or the
    journal machinery appearing in its own body)."""
    return "journaled" in info.effects or body_mentions_journal(info)


def _is_exempt(info: FunctionInfo) -> bool:
    norm = info.path.replace("\\", "/")
    return any(
        norm.endswith(suffix) for suffix in RULE_EXEMPT_FILES.get("REP107", ())
    )


def reachable_from_roots(graph: CallGraph) -> dict[str, tuple[str, ...]]:
    """BFS over call edges from the registered drain roots.

    Returns ``{qualname: chain}`` where ``chain`` is a shortest
    root-to-function call path (the finding's explanation). Journal-aware
    sinks terminate traversal: they appear in the map but their callees
    are not visited through them.
    """
    chains: dict[str, tuple[str, ...]] = {}
    queue: deque[str] = deque()
    for root in graph.roots:
        if root in graph.functions and root not in chains:
            chains[root] = (root,)
            queue.append(root)
    while queue:
        qual = queue.popleft()
        info = graph.functions[qual]
        if is_journal_aware(info) and qual not in graph.roots:
            continue
        for callee in graph.edges.get(qual, ()):
            if callee not in chains and callee in graph.functions:
                chains[callee] = chains[qual] + (callee,)
                queue.append(callee)
    return chains


def find_drain_violations(
    graph: CallGraph,
) -> list[tuple[FunctionInfo, ast.AST, str, tuple[str, ...]]]:
    """Unjournaled shared-handle stores in drain-reachable functions.

    Yields ``(function, store_node, handle, chain)`` tuples, ordered by
    (display path, line) for deterministic reporting.
    """
    chains = reachable_from_roots(graph)
    out: list[tuple[FunctionInfo, ast.AST, str, tuple[str, ...]]] = []
    for qual in sorted(chains):
        info = graph.functions[qual]
        if _is_exempt(info) or is_journal_aware(info):
            continue
        for node in _iter_own_statements(info.node):
            targets: tuple[ast.AST, ...]
            if isinstance(node, ast.Assign):
                targets = tuple(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                if isinstance(node, ast.AnnAssign) and node.value is None:
                    continue
                targets = (node.target,)
            else:
                continue
            for target in targets:
                for leaf in _flatten_store_targets(target):
                    handle = _store_shared_handle(leaf)
                    if handle is not None:
                        out.append((info, leaf, handle, chains[qual]))
    out.sort(key=lambda t: (t[0].display, getattr(t[1], "lineno", 0)))
    return out
