"""Effect annotations for the interprocedural analyzer.

Functions on the parallel-drain or service hot paths can declare their
concurrency contract, and ``repro analyze`` validates the declaration
against what the AST actually shows (rule REP204):

- ``pure`` — no attribute stores, no lock acquisitions, no blocking
  operations in the body;
- ``journaled`` — the function routes shared-state mutation through the
  drain journal (it references ``journal`` / ``_DRAIN_SINK`` or one of
  the journal op methods). The drain-reachability pass treats a
  ``journaled`` function as a safe sink and does not traverse into it;
- ``locked:<Class>.<attr>`` — the body acquires the named lock
  (``with self.<attr>:``), e.g. ``locked:ResultCache._lock``.

Two spellings, for two layering situations:

- the :func:`effects` decorator, importable from anywhere that may
  depend on ``repro.analysis`` (the service layer uses it);
- a ``# repro: effect=journaled`` comment on the ``def`` line, for
  modules below the analyzer in the import graph (``repro.telemetry``,
  ``repro.sim``) where importing the decorator would invert layering.

The decorator is deliberately dependency-free and runtime-inert: it
stamps ``__repro_effects__`` on the function and returns it unchanged,
so it composes with dataclasses, pickling, and bound methods.
"""

from __future__ import annotations

import re
from typing import Callable, TypeVar

#: Attribute set on decorated functions, read by the analyzer via AST
#: (the decorator call is visible syntactically) and by tooling at
#: runtime via :func:`declared_effects`.
EFFECTS_ATTR = "__repro_effects__"

#: Valid bare effect names; ``locked:<name>`` is validated by pattern.
BARE_EFFECTS = frozenset({"pure", "journaled"})

_LOCKED_RE = re.compile(r"^locked:(?P<lock>[A-Za-z_][\w.]*)$")

#: ``# repro: effect=journaled`` / ``# repro: effect=locked:Foo._lock``
#: (comma-separated list allowed) on a ``def`` line.
EFFECT_COMMENT_RE = re.compile(
    r"#\s*repro:\s*effect=(?P<specs>[\w.:,\s-]+)", re.IGNORECASE
)

F = TypeVar("F", bound=Callable[..., object])


def is_valid_effect(spec: str) -> bool:
    """Whether ``spec`` is a recognised effect declaration."""
    return spec in BARE_EFFECTS or _LOCKED_RE.match(spec) is not None


def locked_target(spec: str) -> str | None:
    """The lock name of a ``locked:<name>`` spec, else None."""
    m = _LOCKED_RE.match(spec)
    return m.group("lock") if m is not None else None


def effects(*specs: str) -> Callable[[F], F]:
    """Declare a function's concurrency effects (validated by
    ``repro analyze``); returns the function unchanged."""
    for spec in specs:
        if not is_valid_effect(spec):
            raise ValueError(
                f"unknown effect {spec!r}; expected 'pure', 'journaled', "
                "or 'locked:<Class>.<attr>'"
            )

    def mark(fn: F) -> F:
        setattr(fn, EFFECTS_ATTR, tuple(specs))
        return fn

    return mark


def declared_effects(fn: Callable[..., object]) -> tuple[str, ...]:
    """The effects stamped on ``fn`` by :func:`effects` (empty if none)."""
    out = getattr(fn, EFFECTS_ATTR, ())
    return tuple(out)


def parse_effect_comment(line: str) -> tuple[str, ...]:
    """Effect specs declared by a ``# repro: effect=...`` comment on one
    source line (empty tuple when there is no directive)."""
    m = EFFECT_COMMENT_RE.search(line)
    if m is None:
        return ()
    return tuple(
        spec.strip() for spec in m.group("specs").split(",") if spec.strip()
    )
