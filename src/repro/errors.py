"""Exception hierarchy for the repro package.

Simulated hardware failures are first-class citizens here: the paper reports
two of its baselines *crashing* at scale (Direct CPE past 256 nodes from SPM
exhaustion, Direct MPE at 16,384 nodes from MPI connection memory), and the
reproduction needs to raise — and the benchmarks need to catch — the same
failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class ConfigError(ReproError, ValueError):
    """A configuration value is out of range or inconsistent."""


class SimulatedCrash(ReproError, RuntimeError):
    """A modelled hardware/software failure occurred inside the simulator.

    Carries ``node`` (the simulated node id, or ``None`` for machine-wide
    failures) and a human-readable ``reason``.
    """

    def __init__(self, reason: str, node: int | None = None):
        self.reason = reason
        self.node = node
        where = f" on node {node}" if node is not None else ""
        super().__init__(f"simulated crash{where}: {reason}")


class SpmOverflow(SimulatedCrash):
    """A CPE scratch-pad memory allocation exceeded the 64 KB SPM.

    This is the failure mode that kills the Direct CPE baseline past 256
    nodes in Figure 11: per-destination staging buffers no longer fit.
    """


class ConnectionMemoryExhausted(SimulatedCrash):
    """The per-node MPI connection memory budget was exceeded.

    Each connection costs 100 KB (Section 3.3); the Direct MPE baseline dies
    at 16,384 nodes because 16,384 connections no longer fit the budget.
    """


class DeadlockError(ReproError, RuntimeError):
    """A register-mesh communication schedule contains a circular wait."""


class ValidationError(ReproError, AssertionError):
    """A BFS result failed the Graph500 validation rules."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event engine was driven into an invalid state."""


class ProtocolError(ReproError, RuntimeError):
    """A malformed, truncated, or oversized frame on the service wire."""
